//! Experiment A1 — cluster-count ablation: sweep k = 2..10 and measure the
//! model's held-out quality under leave-one-benchmark-out cross-validation.
//! The paper reports that five clusters were empirically optimal: "using
//! fewer clusters resulted in over-generalized models, and using more
//! clusters resulted in over-specialized models" (Section III-B).
//!
//! Run with: `cargo run --release -p acs-bench --bin ablation_clusters`

use acs_core::eval::evaluate;
use acs_core::{Method, TrainingParams};
use rayon::prelude::*;

fn main() {
    let apps = acs_bench::characterized_suite();

    println!("Ablation A1 — cluster count sweep (LOBO-CV, Model and Model+FL)");
    println!();
    println!(
        "{:>2} | {:>14} | {:>15} | {:>14} | {:>15}",
        "k", "Model %under", "Model %perf", "M+FL %under", "M+FL %perf"
    );
    println!("{}", "-".repeat(72));

    // Every k re-trains and re-evaluates the full suite independently —
    // the sweep fans out across the rayon pool, then prints in k order.
    let results: Vec<(usize, acs_core::MethodSummary, acs_core::MethodSummary)> = (2..11usize)
        .into_par_iter()
        .map(|k| {
            let params = TrainingParams { n_clusters: k, ..Default::default() };
            let eval = evaluate(&apps, params).expect("training succeeds");
            let table = eval.table3();
            let get = |m: Method| *table.iter().find(|s| s.method == m).expect("method present");
            (k, get(Method::Model), get(Method::ModelFL))
        })
        .collect();
    for (k, model, fl) in &results {
        println!(
            "{:>2} | {:>14.1} | {:>15.1} | {:>14.1} | {:>15.1}",
            k,
            model.pct_under,
            model.under_perf_pct.unwrap_or(0.0),
            fl.pct_under,
            fl.under_perf_pct.unwrap_or(0.0),
        );
    }

    println!();
    println!(
        "Expectation per the paper: quality rises from k = 2, is strong in the\n\
         middle of the range (paper picked k = 5), and gains little or degrades\n\
         beyond that as clusters over-specialize."
    );

    let path = acs_bench::write_result("ablation_clusters", &results);
    println!("\nwrote {}", path.display());
}
