//! Experiment F4 — Figure 4: each method plotted by the two headline
//! metrics together — percent of power constraints met, and percent of
//! optimal (oracle) performance achieved while meeting them. The best
//! method sits closest to the oracle's (100, 100) corner.
//!
//! Run with: `cargo run --release -p acs-bench --bin fig4_scatter`

fn main() {
    let eval = acs_bench::full_evaluation();
    let table = eval.table3();

    println!("Figure 4 — % constraints met vs. % optimal performance (under-limit)");
    println!();
    println!(
        "{:<10} | {:>12} | {:>18} | distance to oracle corner",
        "Method", "% under", "% oracle perf"
    );
    println!("{}", "-".repeat(75));
    let mut rows = Vec::new();
    for s in &table {
        let perf = s.under_perf_pct.unwrap_or(0.0);
        let dist = ((100.0 - s.pct_under).powi(2) + (100.0 - perf).powi(2)).sqrt();
        println!(
            "{:<10} | {:>12.0} | {:>18.0} | {:>6.1}",
            s.method.name(),
            s.pct_under,
            perf,
            dist
        );
        rows.push((s.method.name(), s.pct_under, perf, dist));
    }
    println!("{:<10} | {:>12} | {:>18} | {:>6.1}", "Oracle", 100, 100, 0.0);
    println!();

    // ASCII scatter, x = % under (50..100), y = % oracle perf (40..100).
    println!("  %perf");
    for y in (40..=100).rev().step_by(10) {
        let mut line = format!("  {y:>4} |");
        for x in (50..=100).step_by(2) {
            let hit = rows
                .iter()
                .find(|(_, px, py, _)| (px - x as f64).abs() < 1.0 && (py - y as f64).abs() < 5.0);
            line.push_str(match hit {
                Some((name, ..)) => &name[..1], // M/M/G/C initial
                None => " ",
            });
        }
        println!("{line}");
    }
    println!("       +{}", "-".repeat(26));
    println!("        50        75       100  % under");
    println!("  (M = Model/Model+FL, G = GPU+FL, C = CPU+FL)");

    let path = acs_bench::write_result("fig4_scatter", &table);
    println!("\nwrote {}", path.display());
}
