//! Experiment A7 — microbenchmark training (Section III-B: "the training
//! set could be composed of microbenchmarks or a standard benchmark
//! suite"). Train the full pipeline on a *generated* microbenchmark set
//! and validate on the entire real suite — the deployment mode in which a
//! vendor characterizes a machine once, with no knowledge of user
//! applications. Compared against leave-one-benchmark-out training on
//! real applications.
//!
//! Run with: `cargo run --release -p acs-bench --bin ablation_microbench`

use acs_core::eval::{evaluate_kernel, summarize, CaseResult};
use acs_core::{collect_suite, train, Method, TrainingParams};
use acs_kernels::GeneratorConfig;

fn main() {
    let machine = acs_bench::default_machine();

    // Train purely on generated microbenchmarks.
    let micro = acs_kernels::generate(&GeneratorConfig::default(), acs_bench::EXPERIMENT_SEED);
    let micro_profiles = collect_suite(&machine, &micro);
    let model = train(&micro_profiles, TrainingParams::default()).expect("training succeeds");

    // Validate on every kernel of the real suite (all of it is unseen).
    let apps = acs_bench::characterized_suite();
    let mut cases: Vec<CaseResult> = Vec::new();
    for app in &apps {
        for profile in &app.profiles {
            cases.extend(evaluate_kernel(profile, &model, &app.app.label()));
        }
    }

    println!("Ablation A7 — trained on {} generated microbenchmarks,", micro.len());
    println!("validated on all 65 real kernel/input combinations");
    println!();
    println!("{:<9} | {:>7} | {:>11}", "Method", "%Under", "Under %Perf");
    println!("{}", "-".repeat(34));
    let mut rows = Vec::new();
    for &m in &[Method::Model, Method::ModelFL] {
        let s = summarize(&cases, m);
        println!(
            "{:<9} | {:>7.1} | {:>11.1}",
            m.name(),
            s.pct_under,
            s.under_perf_pct.unwrap_or(0.0)
        );
        rows.push(s);
    }

    println!();
    println!("Reference (LOBO-CV on real applications):");
    let lobo = acs_bench::full_evaluation();
    for &m in &[Method::Model, Method::ModelFL] {
        let s = lobo.table3().into_iter().find(|s| s.method == m).unwrap();
        println!(
            "{:<9} | {:>7.1} | {:>11.1}",
            m.name(),
            s.pct_under,
            s.under_perf_pct.unwrap_or(0.0)
        );
    }

    println!();
    println!(
        "Shape check: microbenchmark training should land within a few points\n\
         of application training — the model generalizes from behavior space\n\
         coverage, not from application identity."
    );

    let path = acs_bench::write_result("ablation_microbench", &rows);
    println!("\nwrote {}", path.display());
}
