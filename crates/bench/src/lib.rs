//! # acs-bench — experiment harness
//!
//! Shared plumbing for the table/figure regeneration binaries (one binary
//! per paper artifact; see DESIGN.md section 4 for the index) and the
//! Criterion benchmarks.

#![warn(missing_docs)]

pub mod client;
pub mod loadgen;

use acs_core::eval::{characterize_apps, evaluate, AppProfiles, Evaluation};
use acs_core::{MethodSummary, TrainingParams};
use acs_sim::Machine;
use serde::Serialize;
use std::path::PathBuf;

/// The fixed seed every experiment uses: results in EXPERIMENTS.md were
/// produced with this machine.
pub const EXPERIMENT_SEED: u64 = 2014;

/// The machine all experiments run on.
pub fn default_machine() -> Machine {
    Machine::new(EXPERIMENT_SEED)
}

/// Characterize the full 7-instance, 65-kernel-combination suite.
pub fn characterized_suite() -> Vec<AppProfiles> {
    characterize_apps(&default_machine(), &acs_kernels::app_instances())
}

/// Run the paper's full leave-one-benchmark-out evaluation with default
/// training parameters (k = 5 clusters).
pub fn full_evaluation() -> Evaluation {
    evaluate(&characterized_suite(), TrainingParams::default())
        .expect("full-suite training succeeds")
}

/// Format an optional percentage for table output.
pub fn pct(v: Option<f64>) -> String {
    match v {
        Some(p) => format!("{p:.0}"),
        None => "—".to_string(),
    }
}

/// Render summaries as a Table III-style text table.
pub fn render_table3(rows: &[MethodSummary]) -> String {
    let mut out = String::new();
    out.push_str("Method    | %Under  | Under %Perf | Under %Power | Over %Power | Over %Perf\n");
    out.push_str("----------+---------+-------------+--------------+-------------+-----------\n");
    for s in rows {
        out.push_str(&format!(
            "{:<9} | {:>7.0} | {:>11} | {:>12} | {:>11} | {:>10}\n",
            s.method.name(),
            s.pct_under,
            pct(s.under_perf_pct),
            pct(s.under_power_pct),
            pct(s.over_power_pct),
            pct(s.over_perf_pct),
        ));
    }
    out
}

/// Render a per-application-instance figure: one row per app label, one
/// column per compared method, using `metric` to pull the plotted value
/// out of each per-app summary.
pub fn render_by_app(
    eval: &Evaluation,
    title: &str,
    metric: impl Fn(&MethodSummary) -> Option<f64>,
) -> String {
    use acs_core::Method;
    let mut out = format!("{title}\n\n");
    out.push_str(&format!("{:<14}", "Benchmark"));
    for m in Method::COMPARED {
        out.push_str(&format!(" | {:>9}", m.name()));
    }
    out.push('\n');
    out.push_str(&"-".repeat(14 + Method::COMPARED.len() * 12));
    out.push('\n');
    for label in eval.app_labels() {
        out.push_str(&format!("{label:<14}"));
        for m in Method::COMPARED {
            let per_app = eval.by_app(m);
            let s = per_app.iter().find(|(l, _)| l == &label).map(|(_, s)| s);
            let v = s.and_then(&metric);
            out.push_str(&format!(" | {:>9}", pct(v)));
        }
        out.push('\n');
    }
    out
}

/// Write an experiment's machine-readable result next to the repo's
/// `results/` directory (created on demand). Returns the path.
pub fn write_result<T: Serialize>(experiment: &str, value: &T) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{experiment}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize result");
    std::fs::write(&path, json).expect("write result");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(Some(91.4)), "91");
        assert_eq!(pct(None), "—");
    }

    #[test]
    fn machine_is_seeded() {
        assert_eq!(default_machine().seed, EXPERIMENT_SEED);
    }
}
