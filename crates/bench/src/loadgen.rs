//! A seeded closed-loop load generator for the selection server.
//!
//! Each session is one closed loop: send a request, wait for the
//! response, send the next. The request stream is a pure function of
//! `(seed, session index, request index)` via a splitmix64 generator (the
//! vendored `rand` is an empty shim, and a hand-rolled generator keeps
//! replays bit-identical forever), so running the same options twice
//! produces the same request stream — and, for a single session, must
//! produce a byte-identical response log (the tier-1 gate in
//! `tests/serve_determinism.rs`).
//!
//! The response log excludes `Welcome` (carries the server-assigned node
//! id, which depends on how many sessions the server has ever accepted)
//! and `Stats` (carries wall-clock latencies); both are *session-identity*
//! and *observability* data, not selection results. Everything else —
//! selections, batch selections, run reports, budgets, typed errors — is
//! logged verbatim in request order.

use acs_serve::{Client, ReportFeedback, Request, Response, StatsSnapshot};
use acs_sim::Configuration;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Load-generator options.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Server address (`host:port`).
    pub addr: String,
    /// Total requests across all sessions.
    pub requests: u64,
    /// Seed for the request stream.
    pub seed: u64,
    /// Concurrent closed-loop sessions.
    pub sessions: u64,
    /// Every Nth request is a `Run` (0 = never).
    pub run_every: u64,
    /// Every Nth request is a residual-headroom `Report` (0 = never).
    pub report_every: u64,
    /// Attach seeded measurement feedback to every `Report`, exercising
    /// the server's adaptation loop. The payload is a pure function of
    /// `(seed, session, index)` — same determinism contract as the rest
    /// of the stream.
    pub feedback: bool,
    /// Ask for a `Stats` snapshot after the last request.
    pub stats_at_end: bool,
    /// Send the `Shutdown` poison request once every session is done.
    pub shutdown_at_end: bool,
    /// Open-loop mode: requests are sent at seeded Poisson arrival times
    /// (rate `rate_rps`, split across sessions) instead of waiting for
    /// each response before drawing the next arrival — so the offered
    /// load can exceed capacity instead of self-throttling. Arrival
    /// times come from their own splitmix64 stream, so the *request
    /// contents* are identical to the closed loop's; only timing moves.
    pub open_loop: bool,
    /// Target aggregate arrival rate for open-loop mode, requests/s.
    pub rate_rps: f64,
    /// Attach this deadline to every `Select`/`Run` request (0 = none;
    /// the wire fields stay at their defaults and old servers are
    /// byte-unaffected).
    pub deadline_ms: u64,
    /// Priority class attached alongside `deadline_ms`.
    pub priority: u8,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        Self {
            addr: String::new(),
            requests: 1000,
            seed: 7,
            sessions: 1,
            run_every: 0,
            report_every: 0,
            feedback: false,
            stats_at_end: false,
            shutdown_at_end: false,
            open_loop: false,
            rate_rps: 0.0,
            deadline_ms: 0,
            priority: 0,
        }
    }
}

/// Aggregate results of one load-generator run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadgenReport {
    /// Requests sent (excluding the final optional `Stats`/`Shutdown`).
    pub requests: u64,
    /// Sessions driven.
    pub sessions: u64,
    /// Request-stream seed.
    pub seed: u64,
    /// Responses that were typed errors or `Overloaded`.
    pub errors: u64,
    /// Responses that were `ShedDeadline` — deliberate load shedding,
    /// counted apart from errors (absent in pre-shedding reports).
    #[serde(default)]
    pub sheds: u64,
    /// Requests lost to connection/protocol failures.
    pub dropped: u64,
    /// Wall time for the whole run, s.
    pub elapsed_s: f64,
    /// Requests per second over the run.
    pub throughput_rps: f64,
    /// Median client-observed latency, µs.
    pub p50_latency_us: u64,
    /// 99th-percentile client-observed latency, µs.
    pub p99_latency_us: u64,
    /// `Select` requests that were the first sight of their kernel
    /// (cold path: sample runs + CART + regression on the server).
    pub cold_selects: u64,
    /// Repeat `Select` requests (warm path: memoized frontier walk).
    pub warm_selects: u64,
    /// Mean cold-path latency, µs.
    pub cold_mean_us: f64,
    /// Mean warm-path latency, µs.
    pub warm_mean_us: f64,
    /// Server stats snapshot, when requested.
    pub stats: Option<StatsSnapshot>,
}

/// One worker's share of the run.
struct SessionOutcome {
    log: String,
    latencies_us: Vec<u64>,
    cold_us: Vec<u64>,
    warm_us: Vec<u64>,
    errors: u64,
    sheds: u64,
    dropped: u64,
}

/// splitmix64: tiny, seedable, and stable across toolchains.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in [0, 1).
fn next_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// The deadline fields the options attach to `Select`/`Run` requests.
fn deadline_fields(opts: &LoadgenOptions) -> (Option<u64>, u8) {
    if opts.deadline_ms > 0 {
        (Some(opts.deadline_ms), opts.priority)
    } else {
        (None, 0)
    }
}

/// The deterministic request for `(seed, session, index)`.
fn request_for(opts: &LoadgenOptions, kernel_ids: &[String], rng: &mut u64, index: u64) -> Request {
    let draw = splitmix64(rng);
    if opts.report_every > 0 && index % opts.report_every == opts.report_every - 1 {
        // Residual headroom in [0, 40) W, deterministic from the stream.
        let residual_w = (draw % 4000) as f64 / 100.0;
        // With feedback on, attach a seeded measurement for a seeded
        // (kernel, config) pair: power in [15, 45) W, perf in [0.5, 8.5).
        // Everything comes out of the same draw, so the payload stays a
        // pure function of (seed, session, index).
        let feedback = opts.feedback.then(|| {
            let configs = Configuration::all();
            ReportFeedback {
                kernel_id: kernel_ids[((draw >> 8) % kernel_ids.len() as u64) as usize].clone(),
                config: configs[((draw >> 16) % configs.len() as u64) as usize],
                measured_power_w: 15.0 + ((draw >> 24) % 3000) as f64 / 100.0,
                measured_perf: 0.5 + ((draw >> 40) % 800) as f64 / 100.0,
            }
        });
        return Request::Report { residual_w, feedback };
    }
    let kernel_id = kernel_ids[(draw % kernel_ids.len() as u64) as usize].clone();
    let (deadline_ms, priority) = deadline_fields(opts);
    if opts.run_every > 0 && index % opts.run_every == opts.run_every - 1 {
        Request::Run { kernel_id, iterations: 1 + draw % 3, idem: None, deadline_ms, priority }
    } else {
        Request::Select { kernel_id, deadline_ms, priority }
    }
}

fn run_session(
    opts: &LoadgenOptions,
    session: u64,
    count: u64,
    kernel_ids: &[String],
    first_seen: &Mutex<HashSet<String>>,
) -> Result<SessionOutcome, String> {
    let mut client =
        Client::connect(&opts.addr).map_err(|e| format!("connect {}: {e}", opts.addr))?;
    let mut outcome = SessionOutcome {
        log: String::new(),
        latencies_us: Vec::with_capacity(count as usize),
        cold_us: Vec::new(),
        warm_us: Vec::new(),
        errors: 0,
        sheds: 0,
        dropped: 0,
    };
    // Handshake; `Welcome` is deliberately not logged (see module docs).
    if client.call(&Request::Hello).is_err() {
        outcome.dropped = count;
        return Ok(outcome);
    }
    let mut rng = opts.seed ^ (session.wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_add(session);
    // Open-loop pacing: seeded exponential inter-arrivals from a stream
    // of their own, so timing never perturbs the request contents. When
    // service is slower than the arrival process the next send happens
    // immediately — the backlog is the point of an overload bench.
    let session_rate = if opts.open_loop && opts.rate_rps > 0.0 {
        Some(opts.rate_rps / opts.sessions.max(1) as f64)
    } else {
        None
    };
    let mut arrival_rng =
        opts.seed ^ 0x5DEE_CE66_D1CE_CAFE ^ session.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let mut next_arrival_s = 0.0f64;
    let loop_started = Instant::now();
    for index in 0..count {
        if let Some(rate) = session_rate {
            // Inverse-CDF exponential draw; (1 - u) never hits zero
            // because next_f64 is in [0, 1).
            next_arrival_s += -(1.0 - next_f64(&mut arrival_rng)).ln() / rate;
            let due = Duration::from_secs_f64(next_arrival_s);
            let elapsed = loop_started.elapsed();
            if due > elapsed {
                std::thread::sleep(due - elapsed);
            }
        }
        let request = request_for(opts, kernel_ids, &mut rng, index);
        let cold = match &request {
            Request::Select { kernel_id, .. } => {
                Some(first_seen.lock().expect("first_seen lock").insert(kernel_id.clone()))
            }
            _ => None,
        };
        let started = Instant::now();
        let response = match client.call(&request) {
            Ok(r) => r,
            Err(_) => {
                // The connection is gone; everything not yet sent is lost.
                outcome.dropped += count - index;
                return Ok(outcome);
            }
        };
        let us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        outcome.latencies_us.push(us);
        match cold {
            Some(true) => outcome.cold_us.push(us),
            Some(false) => outcome.warm_us.push(us),
            None => {}
        }
        if matches!(response, Response::Error { .. } | Response::Overloaded { .. }) {
            outcome.errors += 1;
        }
        if matches!(response, Response::ShedDeadline { .. }) {
            outcome.sheds += 1;
        }
        outcome.log.push_str(&serde_json::to_string(&response).expect("serialize response"));
        outcome.log.push('\n');
    }
    let _ = client.call(&Request::Bye);
    Ok(outcome)
}

/// Drive the configured load and return the aggregate report plus the
/// concatenated (session-ordered) response log.
pub fn run_loadgen(opts: &LoadgenOptions) -> Result<(LoadgenReport, String), String> {
    if opts.sessions == 0 {
        return Err("loadgen needs at least one session".into());
    }
    let kernel_ids: Vec<String> =
        acs_kernels::all_kernel_instances().iter().map(|k| k.id()).collect();
    let first_seen = Mutex::new(HashSet::new());
    let base = opts.requests / opts.sessions;
    let extra = opts.requests % opts.sessions;

    let started = Instant::now();
    let outcomes: Vec<Result<SessionOutcome, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.sessions)
            .map(|session| {
                let count = base + u64::from(session < extra);
                let (kernel_ids, first_seen) = (&kernel_ids, &first_seen);
                scope.spawn(move || run_session(opts, session, count, kernel_ids, first_seen))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("loadgen session panicked")).collect()
    });
    let elapsed_s = started.elapsed().as_secs_f64();

    let mut log = String::new();
    let mut latencies: Vec<u64> = Vec::new();
    let mut cold_us: Vec<u64> = Vec::new();
    let mut warm_us: Vec<u64> = Vec::new();
    let (mut errors, mut sheds, mut dropped) = (0u64, 0u64, 0u64);
    for outcome in outcomes {
        let o = outcome?;
        log.push_str(&o.log);
        latencies.extend(o.latencies_us);
        cold_us.extend(o.cold_us);
        warm_us.extend(o.warm_us);
        errors += o.errors;
        sheds += o.sheds;
        dropped += o.dropped;
    }

    let stats = if opts.stats_at_end {
        let mut client = Client::connect(&opts.addr).map_err(|e| format!("stats connect: {e}"))?;
        match client.call(&Request::Stats).map_err(|e| format!("stats call: {e}"))? {
            Response::Stats(s) => Some(*s),
            other => return Err(format!("expected Stats response, got {other:?}")),
        }
    } else {
        None
    };
    if opts.shutdown_at_end {
        let mut client =
            Client::connect(&opts.addr).map_err(|e| format!("shutdown connect: {e}"))?;
        match client.call(&Request::Shutdown).map_err(|e| format!("shutdown call: {e}"))? {
            Response::ShuttingDown => {}
            other => return Err(format!("expected ShuttingDown response, got {other:?}")),
        }
    }

    latencies.sort_unstable();
    let quantile = |q: f64| -> u64 {
        if latencies.is_empty() {
            0
        } else {
            let rank = ((latencies.len() as f64 * q).ceil() as usize).clamp(1, latencies.len());
            latencies[rank - 1]
        }
    };
    let mean = |v: &[u64]| -> f64 {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<u64>() as f64 / v.len() as f64
        }
    };
    let report = LoadgenReport {
        requests: opts.requests,
        sessions: opts.sessions,
        seed: opts.seed,
        errors,
        sheds,
        dropped,
        elapsed_s,
        throughput_rps: if elapsed_s > 0.0 { opts.requests as f64 / elapsed_s } else { 0.0 },
        p50_latency_us: quantile(0.50),
        p99_latency_us: quantile(0.99),
        cold_selects: cold_us.len() as u64,
        warm_selects: warm_us.len() as u64,
        cold_mean_us: mean(&cold_us),
        warm_mean_us: mean(&warm_us),
        stats,
    };
    Ok((report, log))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_stream_is_deterministic() {
        let opts = LoadgenOptions { run_every: 5, report_every: 7, ..Default::default() };
        let ids: Vec<String> = vec!["a".into(), "b".into(), "c".into()];
        let stream = |seed: u64| -> Vec<Request> {
            let mut rng = seed;
            (0..40).map(|i| request_for(&opts, &ids, &mut rng, i)).collect()
        };
        assert_eq!(stream(7), stream(7));
        assert_ne!(stream(7), stream(8), "different seeds should differ somewhere");
        let s = stream(7);
        assert!(matches!(s[6], Request::Report { .. }), "index 6 is the 7th request");
        assert!(matches!(s[4], Request::Run { .. }));
        assert!(s.iter().any(|r| matches!(r, Request::Select { .. })));
    }

    #[test]
    fn feedback_payloads_are_pure_functions_of_the_stream() {
        let ids: Vec<String> = vec!["a".into(), "b".into(), "c".into()];
        let stream = |feedback: bool| -> Vec<Request> {
            let opts = LoadgenOptions { report_every: 3, feedback, ..Default::default() };
            let mut rng = opts.seed;
            (0..30).map(|i| request_for(&opts, &ids, &mut rng, i)).collect()
        };
        assert_eq!(stream(true), stream(true), "feedback mode must replay bit-identically");
        for (index, request) in stream(true).iter().enumerate() {
            if let Request::Report { feedback, .. } = request {
                let fb = feedback
                    .as_ref()
                    .unwrap_or_else(|| panic!("report at index {index} should carry feedback"));
                assert!(ids.contains(&fb.kernel_id));
                assert!(Configuration::all().contains(&fb.config));
                assert!((15.0..45.0).contains(&fb.measured_power_w));
                assert!((0.5..8.5).contains(&fb.measured_perf));
            }
        }
        for request in stream(false) {
            if let Request::Report { feedback, .. } = request {
                assert!(feedback.is_none(), "feedback off must send plain reports");
            }
        }
    }

    #[test]
    fn zero_sessions_is_an_error() {
        let opts = LoadgenOptions { sessions: 0, ..Default::default() };
        assert!(run_loadgen(&opts).is_err());
    }

    #[test]
    fn deadlines_attach_to_selects_and_runs_but_never_reports() {
        let ids: Vec<String> = vec!["a".into(), "b".into()];
        let opts = LoadgenOptions {
            run_every: 4,
            report_every: 5,
            deadline_ms: 250,
            priority: 9,
            ..Default::default()
        };
        assert_eq!(deadline_fields(&opts), (Some(250), 9));
        let mut rng = opts.seed;
        for index in 0..40 {
            match request_for(&opts, &ids, &mut rng, index) {
                Request::Select { deadline_ms, priority, .. }
                | Request::Run { deadline_ms, priority, .. } => {
                    assert_eq!(deadline_ms, Some(250));
                    assert_eq!(priority, 9);
                }
                Request::Report { .. } => {}
                other => panic!("unexpected request {other:?}"),
            }
        }
        // deadline_ms 0 means "attach nothing": the wire stays at the
        // serde defaults even when a priority is configured.
        let off = LoadgenOptions { deadline_ms: 0, priority: 9, ..Default::default() };
        assert_eq!(deadline_fields(&off), (None, 0));
        let mut rng = off.seed;
        match request_for(&off, &ids, &mut rng, 0) {
            Request::Select { deadline_ms, priority, .. } => {
                assert_eq!(deadline_ms, None);
                assert_eq!(priority, 0);
            }
            other => panic!("unexpected request {other:?}"),
        }
    }

    #[test]
    fn open_loop_pacing_never_perturbs_the_request_stream() {
        // The arrival process draws from its own rng stream; the request
        // contents for (seed, session, index) must be byte-identical with
        // pacing on and off.
        let ids: Vec<String> = vec!["a".into(), "b".into(), "c".into()];
        let stream = |open_loop: bool| -> Vec<String> {
            let opts = LoadgenOptions {
                run_every: 5,
                report_every: 7,
                open_loop,
                rate_rps: if open_loop { 500.0 } else { 0.0 },
                ..Default::default()
            };
            let mut rng = opts.seed;
            (0..60)
                .map(|i| serde_json::to_string(&request_for(&opts, &ids, &mut rng, i)).unwrap())
                .collect()
        };
        assert_eq!(stream(true), stream(false));
    }

    #[test]
    fn open_loop_arrivals_are_seeded_and_exponential() {
        // Replaying the arrival stream for one (seed, session) pair gives
        // the same schedule; a different session diverges; and the mean
        // inter-arrival approximates 1/rate.
        let arrivals = |seed: u64, session: u64, rate: f64, n: usize| -> Vec<f64> {
            let mut rng =
                seed ^ 0x5DEE_CE66_D1CE_CAFE ^ session.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            let mut t = 0.0f64;
            (0..n)
                .map(|_| {
                    t += -(1.0 - next_f64(&mut rng)).ln() / rate;
                    t
                })
                .collect()
        };
        assert_eq!(arrivals(7, 0, 100.0, 64), arrivals(7, 0, 100.0, 64));
        assert_ne!(arrivals(7, 0, 100.0, 64), arrivals(7, 1, 100.0, 64));
        let schedule = arrivals(7, 0, 100.0, 4096);
        for pair in schedule.windows(2) {
            assert!(pair[1] > pair[0], "arrival times strictly increase");
        }
        let mean_gap = schedule.last().unwrap() / 4096.0;
        assert!(
            (mean_gap - 0.01).abs() < 0.002,
            "mean inter-arrival {mean_gap} s should approximate 1/rate = 0.01 s"
        );
    }
}
