//! Experiment A12 — sequential-vs-parallel speedup of the sweep-shaped
//! offline pipeline.
//!
//! The end-to-end workload is the paper's offline characterization story
//! at verification scale: generate the quick scenario grid (per-kernel
//! 42-configuration sweeps), train the model (including the O(K²)
//! pairwise Kendall dissimilarity matrix), and replay every scenario
//! through the differential runner. Every stage fans out on the vendored
//! rayon pool, so this bench measures the whole-pipeline speedup of the
//! work-stealing runtime over its own 1-thread sequential fallback —
//! results are byte-identical at any thread count (see
//! `tests/parallel_determinism.rs`), so only wall-clock may differ.
//!
//! Writes `results/BENCH_parallel.json` with the measured times and the
//! speedup ratio; CI runs this as a smoke step and uploads the JSON as an
//! artifact. On a single-core host the parallel run degenerates to the
//! sequential fallback and the speedup hovers around 1.0×.
//!
//! Run with: `cargo bench -p acs-bench --bench pipeline_parallel`

use acs_core::TrainingParams;
use acs_verify::{run_differential, GridParams, ScenarioGrid};
use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// One end-to-end offline-train + oracle-sweep + differential-replay run.
fn pipeline_once() -> usize {
    let grid = ScenarioGrid::generate(GridParams::quick());
    let report = run_differential(&grid, TrainingParams::default()).expect("training succeeds");
    report.total_scenarios
}

/// Median wall-clock of `runs` timed executions of `f`.
fn timed_median(runs: usize, mut f: impl FnMut()) -> Duration {
    let mut samples: Vec<Duration> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

#[derive(Serialize)]
struct SpeedupResult {
    /// Thread count of the parallel run (the pool's default sizing).
    parallel_threads: usize,
    /// Median sequential (1-thread) wall-clock, milliseconds.
    sequential_ms: f64,
    /// Median parallel wall-clock, milliseconds.
    parallel_ms: f64,
    /// `sequential_ms / parallel_ms`.
    speedup: f64,
    /// Scenarios replayed per run (sanity: both paths did the same work).
    scenarios_per_run: usize,
}

fn bench_pipeline_parallel(c: &mut Criterion) {
    let parallel_threads = rayon::current_num_threads();
    let runs = 5;

    // Warm both paths once (populates the configuration-space cache and
    // the OS page cache) before timing.
    let scenarios = rayon::with_num_threads(1, pipeline_once);
    black_box(pipeline_once());

    // Sequential = forced 1-thread fallback; parallel = the default
    // global pool exactly as production sees it.
    let seq = timed_median(runs, || {
        rayon::with_num_threads(1, || black_box(pipeline_once()));
    });
    let par = timed_median(runs, || {
        black_box(pipeline_once());
    });
    let result = SpeedupResult {
        parallel_threads,
        sequential_ms: seq.as_secs_f64() * 1e3,
        parallel_ms: par.as_secs_f64() * 1e3,
        speedup: seq.as_secs_f64() / par.as_secs_f64().max(1e-12),
        scenarios_per_run: scenarios,
    };
    let path = acs_bench::write_result("BENCH_parallel", &result);
    println!(
        "pipeline_parallel: seq {:.0} ms, par {:.0} ms on {} thread(s) → {:.2}× (wrote {})",
        result.sequential_ms,
        result.parallel_ms,
        result.parallel_threads,
        result.speedup,
        path.display()
    );

    // Criterion's own per-iteration view of the same two paths.
    c.bench_function("pipeline_e2e_sequential_1thread", |b| {
        b.iter(|| rayon::with_num_threads(1, || black_box(pipeline_once())))
    });
    c.bench_function("pipeline_e2e_parallel_default", |b| b.iter(|| black_box(pipeline_once())));
}

criterion_group!(benches, bench_pipeline_parallel);
criterion_main!(benches);
