//! Criterion benchmarks for the pipeline's hot paths.
//!
//! `online_selection` is experiment A3: the paper claims the online stage
//! "requires less than one millisecond to make each configuration
//! selection" (Section II) — classify via the tree, predict the 42-point
//! configuration space, derive the predicted frontier, and pick under a
//! cap.

use acs_core::dissimilarity::dissimilarity_matrix;
use acs_core::{train, Frontier, KernelProfile, Predictor, TrainingParams};
use acs_mlstat::{pam, LinearModel};
use acs_sim::{Configuration, KernelCharacteristics, Machine};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn training_set() -> Vec<KernelProfile> {
    let machine = Machine::new(2014);
    let kernels: Vec<KernelCharacteristics> =
        acs_kernels::app_instances().into_iter().take(3).flat_map(|a| a.kernels).collect();
    acs_core::collect_suite(&machine, &kernels)
}

fn bench_online_selection(c: &mut Criterion) {
    let profiles = training_set();
    let model = train(&profiles, TrainingParams::default()).expect("training succeeds");
    let predictor = Predictor::new(&model);
    let samples = profiles[0].sample_pair();

    // The full online path: classify → predict all configs → frontier →
    // select. Paper bound: < 1 ms.
    c.bench_function("online_selection", |b| {
        b.iter(|| {
            let predicted = predictor.predict(black_box(&samples));
            black_box(predicted.select(25.0))
        })
    });

    // Selection alone once predictions exist (cap changes at runtime —
    // "avoids the need to examine predictions for all configurations when
    // scheduling conditions change").
    let predicted = predictor.predict(&samples);
    c.bench_function("reselect_under_new_cap", |b| {
        let mut cap = 10.0;
        b.iter(|| {
            cap = if cap > 40.0 { 10.0 } else { cap + 0.1 };
            black_box(predicted.select(black_box(cap)))
        })
    });

    c.bench_function("tree_classification", |b| {
        b.iter(|| black_box(predictor.classify(black_box(&samples))))
    });
}

fn bench_offline_stage(c: &mut Criterion) {
    let profiles = training_set();

    c.bench_function("offline_training_full", |b| {
        b.iter(|| black_box(train(black_box(&profiles), TrainingParams::default()).unwrap()))
    });

    let frontiers: Vec<Frontier> = profiles.iter().map(KernelProfile::frontier).collect();
    c.bench_function("dissimilarity_matrix", |b| {
        b.iter(|| black_box(dissimilarity_matrix(black_box(&frontiers))))
    });

    let matrix = dissimilarity_matrix(&frontiers);
    c.bench_function("pam_k5", |b| b.iter(|| black_box(pam(black_box(&matrix), 5))));

    let points = profiles[0].measured_points();
    c.bench_function("frontier_extraction", |b| {
        b.iter_batched(
            || points.clone(),
            |pts| black_box(Frontier::from_points(pts)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_substrates(c: &mut Criterion) {
    let machine = Machine::new(2014);
    let kernel = KernelCharacteristics::default();
    c.bench_function("machine_single_run", |b| {
        let cfg = Configuration::enumerate()[17];
        b.iter(|| black_box(machine.run(black_box(&kernel), &cfg)))
    });
    c.bench_function("machine_full_sweep", |b| {
        b.iter(|| black_box(machine.sweep(black_box(&kernel))))
    });

    // Regression fit at the size the offline stage uses per cluster
    // (~hundreds of rows, 6 columns).
    let rows: Vec<Vec<f64>> = (0..400)
        .map(|i| {
            let x = i as f64 / 400.0;
            vec![x, x * x, (i % 7) as f64, x * (i % 7) as f64, 1.0 - x, x.sqrt()]
        })
        .collect();
    let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - r[2] + 0.5 * r[3] + 3.0).collect();
    c.bench_function("ols_fit_400x6", |b| {
        b.iter(|| black_box(LinearModel::fit(black_box(&rows), black_box(&y), true).unwrap()))
    });
}

fn bench_extensions(c: &mut Criterion) {
    use acs_core::bootstrap::bootstrap_table3;
    use acs_core::eval::{characterize_apps, evaluate};
    use acs_core::partition::{partition_budget, DemandCurve};

    // Partitioning two apps' demand curves at 0.5 W resolution. Use two
    // *distinct* benchmarks (CoMD + SMC) so the LOBO evaluation below has
    // a training fold.
    let machine = Machine::new(2014);
    let two_benchmarks: Vec<acs_kernels::AppInstance> = acs_kernels::app_instances()
        .into_iter()
        .filter(|a| a.label() == "CoMD" || a.label() == "SMC Small")
        .collect();
    let apps = characterize_apps(&machine, &two_benchmarks);
    let model = train(
        &apps.iter().flat_map(|a| a.profiles.iter().cloned()).collect::<Vec<_>>(),
        TrainingParams::default(),
    )
    .expect("training succeeds");
    let predictor = Predictor::new(&model);
    let curves: Vec<DemandCurve> = apps
        .iter()
        .map(|a| {
            let frontiers: Vec<(f64, Frontier)> = a
                .profiles
                .iter()
                .map(|p| (p.kernel.weight, predictor.predict(&p.sample_pair()).frontier))
                .collect();
            DemandCurve::from_frontiers(&a.app.label(), &frontiers)
        })
        .collect();
    c.bench_function("partition_two_apps", |b| {
        b.iter(|| black_box(partition_budget(black_box(&curves), 50.0, 0.5)))
    });

    // Bootstrap CIs over a mini evaluation (100 replicates).
    let eval = evaluate(&apps, TrainingParams::default()).expect("evaluation succeeds");
    c.bench_function("bootstrap_100", |b| {
        b.iter(|| black_box(bootstrap_table3(black_box(&eval.cases), 100, 0.95, 1)))
    });

    // Phase-trace construction and accumulator sampling.
    let kernel = KernelCharacteristics::default();
    let cfg = Configuration::enumerate()[30];
    let cal = acs_sim::PowerCalibration::default();
    c.bench_function("trace_build_and_sense", |b| {
        let sensor = acs_sim::PowerSensor::default();
        let noise = acs_sim::NoiseSource::new(1, "bench", cfg.index(), 0);
        b.iter(|| {
            let trace = acs_sim::trace_for(black_box(&kernel), &cfg, &cal);
            black_box(sensor.estimate_trace(&trace, |p| p.cpu_plane_w, &noise))
        })
    });
}

criterion_group!(
    benches,
    bench_online_selection,
    bench_offline_stage,
    bench_substrates,
    bench_extensions
);
criterion_main!(benches);
