//! Experiment A17 — latency of the flattened selection engine
//! (DESIGN.md §15).
//!
//! Three paths, same decision:
//!
//! * **cold** — `Predictor::select_with` through a reused
//!   [`SelectScratch`]: branchless CART classify, fused per-cluster
//!   regression tables, tie-refined frontier skeleton, binary-search
//!   cap lookup. This is what the serve engine pays on a cache miss.
//! * **warm** — `PredictedProfile::select` on a memoized profile: one
//!   `partition_point` over the predicted frontier. This is the serve
//!   engine's cache-hit path after the profile Arc is cloned.
//! * **scalar** — the reference `predict_scalar(..).select(cap)`
//!   pipeline (per-config feature rows, four `LinearModel::predict`
//!   calls each, full frontier sort). Kept to report the speedup; the
//!   flat paths are gated bit-identical to it in
//!   `tests/fastpath_identity.rs`.
//!
//! Writes `results/BENCH_select.json` and asserts the paper-level
//! budget: cold mean < 10 µs, warm mean < 5 µs. With `ACS_SELECT_GATE=1`
//! the previously committed `results/BENCH_select.json` becomes a
//! regression baseline: the run fails if the cold mean regressed by
//! more than 25%.
//!
//! Run with: `cargo bench -p acs-bench --bench select`

use acs_core::{collect_suite, train, Predictor, SelectScratch, TrainingParams};
use acs_core::{sample_config, SamplePair};
use acs_sim::Device;
use criterion::{criterion_group, criterion_main, Criterion};
use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::time::Instant;

/// Caps the timed loops rotate through, spanning infeasible-low to
/// uncapped so the binary search visits different frontier prefixes.
const CAPS: [f64; 6] = [8.0, 12.0, 18.0, 25.0, 35.0, 60.0];

/// Iterations per timed batch; the per-op mean comes from the median
/// batch of [`BATCHES`].
const BATCH_ITERS: usize = 20_000;
const BATCHES: usize = 7;

/// Scalar batches are shorter — the reference path is orders of
/// magnitude slower and only needs a mean, not a distribution.
const SCALAR_BATCH_ITERS: usize = 500;

#[derive(Serialize, Deserialize)]
struct SelectBenchResult {
    /// Mean flat cold select (classify + fused regression + frontier +
    /// cap lookup), microseconds.
    cold_mean_us: f64,
    /// Mean warm select (memoized profile, binary-search cap lookup),
    /// microseconds.
    warm_mean_us: f64,
    /// Mean scalar reference select, microseconds.
    scalar_mean_us: f64,
    /// `scalar_mean_us / cold_mean_us`.
    cold_speedup_vs_scalar: f64,
    /// Iterations per timed batch (median of several batches).
    batch_iters: usize,
}

/// Median-batch mean latency, in microseconds, of `iters` calls to `f`.
fn mean_us_of_median_batch(batches: usize, iters: usize, mut f: impl FnMut(usize)) -> f64 {
    let mut per_op: Vec<f64> = (0..batches)
        .map(|_| {
            let t0 = Instant::now();
            for i in 0..iters {
                f(i);
            }
            t0.elapsed().as_secs_f64() * 1e6 / iters as f64
        })
        .collect();
    per_op.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    per_op[per_op.len() / 2]
}

/// Training suite: two apps' kernels, same shape as the determinism
/// gates (enough clusters to make classification non-trivial).
fn training_kernels() -> Vec<acs_sim::KernelCharacteristics> {
    acs_kernels::comd::kernels(acs_kernels::InputSize::Default)
        .into_iter()
        .chain(acs_kernels::smc::kernels(acs_kernels::InputSize::Small))
        .collect()
}

fn bench_select(c: &mut Criterion) {
    let machine = acs_bench::default_machine();
    let profiles = collect_suite(&machine, &training_kernels());
    let model = train(&profiles, TrainingParams::default()).expect("training succeeds");
    let predictor = Predictor::new(&model);

    // The probed kernel is held out of training (LULESH vs CoMD+SMC).
    let kernel = &acs_kernels::lulesh::kernels(acs_kernels::InputSize::Small)[0];
    let samples = SamplePair::new(
        machine.run(kernel, &sample_config(Device::Cpu)),
        machine.run(kernel, &sample_config(Device::Gpu)),
    );

    let mut scratch = SelectScratch::new();
    let memoized = predictor.predict(&samples);

    // Warm every path (and the config-space cache) before timing.
    for cap in CAPS {
        assert_eq!(
            predictor.select_with(&samples, cap, &mut scratch),
            predictor.predict_scalar(&samples).select(cap),
            "flat and scalar paths disagree at cap {cap} — run tests/fastpath_identity.rs"
        );
        assert_eq!(memoized.select(cap), predictor.select_with(&samples, cap, &mut scratch));
    }

    let cold_mean_us = mean_us_of_median_batch(BATCHES, BATCH_ITERS, |i| {
        let cap = CAPS[i % CAPS.len()];
        black_box(predictor.select_with(black_box(&samples), cap, &mut scratch));
    });
    let warm_mean_us = mean_us_of_median_batch(BATCHES, BATCH_ITERS, |i| {
        let cap = CAPS[i % CAPS.len()];
        black_box(memoized.select(black_box(cap)));
    });
    let scalar_mean_us = mean_us_of_median_batch(BATCHES, SCALAR_BATCH_ITERS, |i| {
        let cap = CAPS[i % CAPS.len()];
        black_box(predictor.predict_scalar(black_box(&samples)).select(cap));
    });

    let result = SelectBenchResult {
        cold_mean_us,
        warm_mean_us,
        scalar_mean_us,
        cold_speedup_vs_scalar: scalar_mean_us / cold_mean_us.max(1e-12),
        batch_iters: BATCH_ITERS,
    };

    // Optional regression gate against the committed baseline; read it
    // before `write_result` overwrites the file.
    let gate = std::env::var("ACS_SELECT_GATE").is_ok_and(|v| v == "1");
    let baseline: Option<SelectBenchResult> = gate.then(|| {
        let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../results/BENCH_select.json");
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("ACS_SELECT_GATE=1 but no baseline at {path:?}: {e}"));
        serde_json::from_str(&text).expect("baseline BENCH_select.json parses")
    });

    let path = acs_bench::write_result("BENCH_select", &result);
    println!(
        "select: cold {cold_mean_us:.3} µs, warm {warm_mean_us:.3} µs, scalar {scalar_mean_us:.3} µs \
         ({:.1}× cold speedup) (wrote {})",
        result.cold_speedup_vs_scalar,
        path.display()
    );

    // The paper-level latency budget (ISSUE PR 8 / EXPERIMENTS.md A17).
    assert!(cold_mean_us < 10.0, "cold select mean {cold_mean_us:.3} µs ≥ 10 µs budget");
    assert!(warm_mean_us < 5.0, "warm select mean {warm_mean_us:.3} µs ≥ 5 µs budget");

    if let Some(base) = baseline {
        let limit = base.cold_mean_us * 1.25;
        assert!(
            cold_mean_us <= limit,
            "cold select regressed: {cold_mean_us:.3} µs vs committed {:.3} µs (+25% limit {limit:.3})",
            base.cold_mean_us
        );
    }

    // Criterion's per-iteration view of the same three paths.
    c.bench_function("select_cold_flat", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(predictor.select_with(
                black_box(&samples),
                CAPS[i % CAPS.len()],
                &mut scratch,
            ))
        })
    });
    c.bench_function("select_warm_memoized", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(memoized.select(black_box(CAPS[i % CAPS.len()])))
        })
    });
    c.bench_function("select_scalar_reference", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(predictor.predict_scalar(black_box(&samples)).select(CAPS[i % CAPS.len()]))
        })
    });
}

criterion_group!(benches, bench_select);
criterion_main!(benches);
