//! End-to-end tests of the resilient client against a real server, with
//! and without the chaos proxy in the middle.

use acs_bench::client::{ClientError, ResilientClient, RetryPolicy};
use acs_core::{train, KernelProfile, TrainedModel, TrainingParams};
use acs_serve::{
    ChaosPlan, ChaosProxy, Client, Request, Response, ServeConfig, Server, ServerHandle,
};
use acs_sim::Machine;
use std::sync::OnceLock;
use std::time::Duration;

fn model() -> TrainedModel {
    static MODEL: OnceLock<TrainedModel> = OnceLock::new();
    MODEL
        .get_or_init(|| {
            let machine = Machine::new(2014);
            let profiles: Vec<KernelProfile> = acs_kernels::all_kernel_instances()
                .iter()
                .take(12)
                .map(|k| KernelProfile::collect(&machine, k))
                .collect();
            train(&profiles, TrainingParams::default()).expect("training succeeds")
        })
        .clone()
}

fn spawn(config: ServeConfig) -> (String, ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(config, model()).expect("bind succeeds");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server runs"));
    (addr, handle, join)
}

#[test]
fn retried_run_with_one_key_replays_byte_identical_bytes() {
    let (addr, handle, join) = spawn(ServeConfig::default());
    let kernel_id = acs_kernels::all_kernel_instances()[0].id();

    // The wire-level contract the resilient client relies on: a retry
    // carrying the same idempotency key gets the memoized response back,
    // byte for byte, without a second execution.
    let mut raw = Client::connect(&addr).unwrap();
    let request =
        Request::Run { kernel_id, iterations: 3, idem: Some(5005), deadline_ms: None, priority: 0 };
    let first = serde_json::to_string(&raw.call(&request).unwrap()).unwrap();
    let retried = serde_json::to_string(&raw.call(&request).unwrap()).unwrap();
    assert_eq!(first, retried, "a keyed retry must replay identical bytes");
    assert_eq!(handle.idem_replays(), 1);

    // Without a key, the second execution runs again: the runtime's noise
    // state advanced, so the responses legitimately differ.
    let kernel_id = acs_kernels::all_kernel_instances()[1].id();
    let unkeyed =
        Request::Run { kernel_id, iterations: 3, idem: None, deadline_ms: None, priority: 0 };
    let a = serde_json::to_string(&raw.call(&unkeyed).unwrap()).unwrap();
    let b = serde_json::to_string(&raw.call(&unkeyed).unwrap()).unwrap();
    assert_ne!(a, b, "unkeyed runs re-execute");
    assert_eq!(handle.idem_replays(), 1, "no key, no replay");

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn resilient_client_finishes_a_run_sequence_under_chaos() {
    let (addr, handle, join) = spawn(ServeConfig { max_sessions: 64, ..ServeConfig::default() });
    // Disconnect-and-tear-heavy: roughly one call in four loses its
    // connection, so a bare client would fail the sequence with near
    // certainty. No corruption: a corrupted *request* is a typed
    // permanent failure, not a retriable transient.
    let plan = ChaosPlan {
        disconnect_p: 0.15,
        tear_p: 0.10,
        corrupt_p: 0.0,
        delay_p: 0.10,
        delay_ms: 2,
        dup_p: 0.0,
        ..ChaosPlan::quiet(11)
    };
    let proxy = ChaosProxy::bind("127.0.0.1:0", &addr, plan).unwrap();
    let proxy_addr = proxy.local_addr().to_string();
    let proxy_handle = proxy.handle();
    let proxy_join = std::thread::spawn(move || proxy.run().unwrap());

    let policy = RetryPolicy {
        max_attempts: 8,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(10),
        request_deadline: Duration::from_secs(10),
        breaker_threshold: 8, // chaos is expected; don't trip on it
        breaker_cooldown: Duration::from_millis(10),
    };
    let mut client = ResilientClient::new(&proxy_addr, policy).with_key_seed(42);

    let kernel_ids: Vec<String> =
        acs_kernels::all_kernel_instances().iter().take(4).map(|k| k.id()).collect();
    let mut completed = 0u32;
    for i in 0..24u32 {
        let kernel_id = &kernel_ids[i as usize % kernel_ids.len()];
        match client.run(kernel_id, 1 + u64::from(i % 2)) {
            Ok(Response::Ran { .. }) => completed += 1,
            Ok(other) => panic!("expected Ran, got {other:?}"),
            Err(e) => panic!("resilient client gave up at call {i}: {e}"),
        }
    }
    assert_eq!(completed, 24, "every logical call must complete under chaos");
    let stats = client.stats();
    assert!(stats.retries > 0, "the plan injects faults; some retries must have happened");
    assert!(stats.connects > 1, "failed attempts reconnect");
    assert!(proxy_handle.stats().faults() > 0, "the proxy injected nothing?");
    assert_eq!(handle.budget_conservation_error_w(), 0.0);

    proxy_handle.shutdown();
    proxy_join.join().unwrap();
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn breaker_fails_fast_once_the_server_is_gone() {
    let (addr, handle, join) = spawn(ServeConfig::default());
    let policy = RetryPolicy {
        max_attempts: 2,
        base_backoff: Duration::from_micros(200),
        max_backoff: Duration::from_millis(1),
        request_deadline: Duration::from_secs(2),
        breaker_threshold: 2,
        breaker_cooldown: Duration::from_secs(30), // long: stays open for the test
    };
    let mut client = ResilientClient::new(&addr, policy);
    let kernel_id = acs_kernels::all_kernel_instances()[0].id();
    assert!(matches!(client.run(&kernel_id, 1), Ok(Response::Ran { .. })));

    handle.shutdown();
    join.join().unwrap();

    // First call after death: real attempts, then Exhausted (2 failures
    // reach the threshold and trip the breaker).
    match client.run(&kernel_id, 1) {
        Err(ClientError::Exhausted { attempts: 2, .. }) => {}
        other => panic!("expected Exhausted, got {other:?}"),
    }
    // Second call: no attempts at all, just a fast CircuitOpen.
    let attempts_before = client.stats().attempts;
    match client.run(&kernel_id, 1) {
        Err(ClientError::CircuitOpen) => {}
        other => panic!("expected CircuitOpen, got {other:?}"),
    }
    assert_eq!(client.stats().attempts, attempts_before, "open circuit must not dial");
    assert!(client.stats().breaker_opens >= 1);
    assert_eq!(client.stats().breaker_fast_fails, 1);
}

#[test]
fn non_idempotent_requests_are_never_retried() {
    // Against a dead address every attempt fails; the attempt counter
    // then reveals the retry decision.
    let policy = RetryPolicy {
        max_attempts: 5,
        base_backoff: Duration::from_micros(100),
        max_backoff: Duration::from_micros(200),
        request_deadline: Duration::from_secs(2),
        breaker_threshold: 100, // keep the breaker out of this test
        breaker_cooldown: Duration::from_millis(1),
    };
    let mut client = ResilientClient::new("127.0.0.1:1", policy);

    match client.call(&Request::Report { residual_w: 1.0, feedback: None }) {
        Err(ClientError::NotRetriable { .. }) => {}
        other => panic!("expected NotRetriable, got {other:?}"),
    }
    assert_eq!(client.stats().attempts, 1, "a Report must get exactly one attempt");

    match client.call(&Request::Select { kernel_id: "k".into(), deadline_ms: None, priority: 0 }) {
        Err(ClientError::Exhausted { attempts: 5, .. }) => {}
        other => panic!("expected Exhausted, got {other:?}"),
    }
    assert_eq!(client.stats().attempts, 6, "an idempotent Select retries to the bound");
}
