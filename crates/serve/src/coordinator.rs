//! The `acs coordinator` process: owner of the fleet power budget.
//!
//! One coordinator serves many `acs serve` shards. Shards acquire
//! time-bounded leases on slices of the global cap over the same
//! length-prefixed JSON transport the selection protocol uses
//! ([`CoordRequest`]/[`CoordResponse`]); the lease state machine itself —
//! grant, renew, expiry, encumbrance, fencing — lives in [`crate::lease`]
//! and is pure, so this module is only plumbing: the listener, the
//! logical clock, and the journal.
//!
//! ## Clock
//!
//! Lease expiry is defined in *logical ticks*; the coordinator maps them
//! to wall clock as `tick = base + elapsed_ms / tick_ms`. `base` resumes
//! from the replayed journal's last recorded tick, so a restarted
//! coordinator never steps time backwards (leases that should have
//! expired during the outage expire on the first operation after
//! restart, not retroactively mid-replay).
//!
//! ## Crash failover
//!
//! Every applied grant/renew/release/revoke is journaled *under the
//! table lock* with the tick it was applied at and the post-op epoch
//! (the same PR 5 journal: CRC framing, torn-tail truncation, optional
//! `--journal-sync` durability). A SIGKILLed coordinator therefore
//! replays to the exact lease table and **re-adopts** still-live shards:
//! their fences survive, so their next renewal just works, and a
//! re-lease after a partition lands on the same lease id instead of a
//! double grant. There is nothing to skip on crash — unlike sessions,
//! leases are *supposed* to outlive the process.

use crate::journal::Journal;
use crate::lease::{
    replay_coordinator, CoordJournalEntry, CoordRecovery, CoordRequest, CoordResponse, CoordStats,
    LeaseTable,
};
use crate::protocol::{read_frame, write_frame, ProtocolError, ReadOutcome};
use crate::server::{sig, ServeError};
use crate::ArbiterPolicy;
use parking_lot::Mutex;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Per-connection read timeout; bounds how long a connection takes to
/// observe the shutdown flag.
const CONN_READ_TIMEOUT: Duration = Duration::from_millis(100);

/// Coordinator configuration.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Interface to bind.
    pub host: String,
    /// Port to bind; `0` asks the OS for an ephemeral port.
    pub port: u16,
    /// The fleet-wide power cap, W.
    pub global_cap_w: f64,
    /// How lease targets split the pool (equal, or demand-proportional).
    pub policy: ArbiterPolicy,
    /// Lease TTL in logical ticks.
    pub ttl_ticks: u64,
    /// Wall-clock milliseconds per logical tick.
    pub tick_ms: u64,
    /// Degraded-mode floor, W: what an expired lease stays encumbered at,
    /// and what its silent shard clamps itself to.
    pub floor_w: f64,
    /// Health-check eviction horizon in ticks: an expired lease whose
    /// shard stays silent this many ticks past its expiry is evicted —
    /// its encumbered reserve returns to the pool and the shard must
    /// re-admit as a fresh grant. `0` (the default) disables eviction
    /// and floor-parks silent shards forever. Must match across restarts
    /// of a journaled coordinator (replay recomputes evictions from it).
    pub evict_after_ticks: u64,
    /// Lease-journal path. `Some` makes every grant/renew/release/revoke
    /// durable: a restarted coordinator replays to the exact lease table
    /// and re-adopts still-live shards.
    pub journal: Option<std::path::PathBuf>,
    /// `sync_data` every journal append (the `--journal-sync` trade-off:
    /// the tail survives machine power loss, at a disk round trip per
    /// append).
    pub journal_sync: bool,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        Self {
            host: "127.0.0.1".into(),
            port: 0,
            global_cap_w: 120.0,
            policy: ArbiterPolicy::DemandProportional,
            ttl_ticks: 20,
            tick_ms: 50,
            floor_w: 5.0,
            evict_after_ticks: 0,
            journal: None,
            journal_sync: false,
        }
    }
}

impl CoordinatorConfig {
    /// The lease TTL in wall-clock milliseconds (what `Granted` carries
    /// so shards can run their own expiry clocks).
    pub fn ttl_ms(&self) -> u64 {
        self.ttl_ticks * self.tick_ms
    }
}

/// State shared by the accept loop and every connection.
struct CoordShared {
    config: CoordinatorConfig,
    table: Mutex<LeaseTable>,
    journal: Option<Arc<Journal<CoordJournalEntry>>>,
    recovery: Option<CoordRecovery>,
    shutdown: AtomicBool,
    started: Instant,
    base_tick: u64,
}

impl CoordShared {
    /// The current logical tick (never behind the replayed journal).
    fn now_tick(&self) -> u64 {
        self.base_tick + self.started.elapsed().as_millis() as u64 / self.config.tick_ms.max(1)
    }

    /// Best-effort journal append (mirrors the serve shard: append
    /// failures degrade durability, not availability).
    fn journal_append(&self, entry: &CoordJournalEntry) {
        if let Some(journal) = &self.journal {
            let _ = journal.append(entry);
        }
    }

    fn stats(&self) -> CoordStats {
        let table = self.table.lock();
        CoordStats {
            tick: table.tick(),
            epoch: table.epoch(),
            global_cap_w: table.global_cap_w(),
            floor_w: table.floor_w(),
            live_leases: table.live_ids().len() as u64,
            encumbered_leases: table.encumbered_ids().len() as u64,
            live_committed_w: table.live_committed_w(),
            encumbered_w: table.encumbered_w(),
            pool_w: table.pool_w(),
            overshoot_w: table.overshoot_w(),
            grants: table.grants(),
            renews: table.renews(),
            expirations: table.expirations(),
            revocations: table.revocations(),
            evicted_shards: table.evictions(),
            journal_appends: self.journal.as_ref().map_or(0, |j| j.appended_entries()),
            journal_replayed: self.recovery.as_ref().map_or(0, |r| r.replayed),
        }
    }
}

/// A cheap handle for observing and stopping a running coordinator.
#[derive(Clone)]
pub struct CoordinatorHandle {
    shared: Arc<CoordShared>,
}

impl CoordinatorHandle {
    /// Request shutdown; the accept loop and connections drain within
    /// their next poll interval.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Die abruptly. For the coordinator this is the same as shutdown —
    /// every applied operation was already journaled under the table
    /// lock, so there is no clean-exit bookkeeping for a crash to skip;
    /// the alias exists so kill-and-restart tests read like the serve
    /// shard's.
    pub fn simulate_crash(&self) {
        self.shutdown();
    }

    /// A coordinator metrics snapshot.
    pub fn stats(&self) -> CoordStats {
        self.shared.stats()
    }

    /// The conservation gate: live commitments above the pool, W. Must be
    /// exactly zero at every observable instant.
    pub fn overshoot_w(&self) -> f64 {
        self.shared.table.lock().overshoot_w()
    }

    /// Everything the fleet could be drawing per the lease table, W
    /// (live commitments plus encumbered reserves); never above the cap.
    pub fn fleet_committed_w(&self) -> f64 {
        self.shared.table.lock().fleet_committed_w()
    }

    /// What journal replay reconstructed at bind time, if a journal was
    /// configured.
    pub fn recovery(&self) -> Option<CoordRecovery> {
        self.shared.recovery.clone()
    }
}

/// A bound, not-yet-running coordinator.
pub struct Coordinator {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<CoordShared>,
}

impl Coordinator {
    /// Bind the configured address, replaying the lease journal if one is
    /// configured. Divergent journals are a typed bind error, never a
    /// guess at who holds which watts.
    pub fn bind(config: CoordinatorConfig) -> Result<Self, ServeError> {
        let requested = format!("{}:{}", config.host, config.port);
        let listener = TcpListener::bind(&requested)
            .map_err(|e| ServeError::Bind { addr: requested.clone(), detail: e.to_string() })?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Bind { addr: requested, detail: e.to_string() })?;
        listener.set_nonblocking(true).map_err(|e| ServeError::Io(e.to_string()))?;

        let (journal, recovery, table) = match &config.journal {
            Some(path) => {
                let (journal, entries) = Journal::open_with_sync(path, config.journal_sync)
                    .map_err(|e| ServeError::Journal(e.to_string()))?;
                let (table, recovery) = replay_coordinator(
                    &entries,
                    config.global_cap_w,
                    config.policy,
                    config.ttl_ticks,
                    config.floor_w,
                    config.evict_after_ticks,
                )
                .map_err(|e| ServeError::Journal(e.to_string()))?;
                (Some(Arc::new(journal)), Some(recovery), table)
            }
            None => {
                let mut table = LeaseTable::new(
                    config.global_cap_w,
                    config.policy,
                    config.ttl_ticks,
                    config.floor_w,
                );
                table.set_evict_after_ticks(config.evict_after_ticks);
                (None, None, table)
            }
        };
        let base_tick = table.tick();
        let shared = Arc::new(CoordShared {
            config,
            table: Mutex::new(table),
            journal,
            recovery,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            base_tick,
        });
        Ok(Self { listener, addr, shared })
    }

    /// The address actually bound (resolves `--port 0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle usable from other threads while [`run`](Self::run) blocks.
    pub fn handle(&self) -> CoordinatorHandle {
        CoordinatorHandle { shared: Arc::clone(&self.shared) }
    }

    /// Serve until SIGINT or a `Shutdown` request, then drain.
    pub fn run(self) -> Result<(), ServeError> {
        sig::install();
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if sig::pending() {
                self.shared.shutdown.store(true, Ordering::SeqCst);
            }
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    conns.push(std::thread::spawn(move || run_conn(shared, stream)));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(ServeError::Io(e.to_string())),
            }
        }
        for handle in conns {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// One shard (or operator) connection.
fn run_conn(shared: Arc<CoordShared>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(CONN_READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let request = match read_frame::<_, CoordRequest>(&mut stream) {
            Ok(ReadOutcome::Frame(req)) => req,
            Ok(ReadOutcome::Idle) => continue,
            Ok(ReadOutcome::Eof) => break,
            Err(err) => {
                let _ = write_frame(
                    &mut stream,
                    &CoordResponse::Error { code: err.code().into(), detail: err.to_string() },
                );
                break;
            }
        };
        let (response, done) = handle_request(&shared, request);
        if write_frame(&mut stream, &response).is_err() {
            break;
        }
        if done {
            break;
        }
    }
}

/// Serve one request. Every mutation advances the logical clock, applies
/// the operation, and journals it — all under the table lock, so the
/// recorded tick and epoch are exactly the ones the operation produced.
fn handle_request(shared: &CoordShared, request: CoordRequest) -> (CoordResponse, bool) {
    match request {
        CoordRequest::Lease { shard_id, demand_w } => {
            // Sanitize before journaling: the entry must hold the value
            // grant() actually used (and NaN does not survive JSON).
            let demand_w = if demand_w.is_finite() { demand_w.max(0.0) } else { 0.0 };
            let mut table = shared.table.lock();
            table.advance_to(shared.now_tick());
            match table.grant(shard_id, demand_w) {
                Ok(o) => {
                    shared.journal_append(&CoordJournalEntry::Grant {
                        lease_id: o.lease_id,
                        shard_id: o.shard_id,
                        demand_w,
                        tick: table.tick(),
                        epoch: o.epoch,
                    });
                    (
                        CoordResponse::Granted {
                            lease_id: o.lease_id,
                            shard_id: o.shard_id,
                            epoch: o.epoch,
                            budget_w: o.budget_w,
                            expires_tick: o.expires_tick,
                            ttl_ms: shared.config.ttl_ms(),
                        },
                        false,
                    )
                }
                Err(e) => (
                    CoordResponse::Rejected { code: e.code().into(), detail: e.to_string() },
                    false,
                ),
            }
        }
        CoordRequest::Renew { lease_id, epoch, demand_w } => {
            let demand_w = if demand_w.is_finite() { demand_w.max(0.0) } else { 0.0 };
            let mut table = shared.table.lock();
            table.advance_to(shared.now_tick());
            match table.renew(lease_id, epoch, demand_w) {
                Ok(o) => {
                    shared.journal_append(&CoordJournalEntry::Renew {
                        lease_id,
                        demand_w,
                        tick: table.tick(),
                        epoch: o.epoch,
                    });
                    (
                        CoordResponse::Renewed {
                            lease_id,
                            epoch: o.epoch,
                            budget_w: o.budget_w,
                            expires_tick: o.expires_tick,
                        },
                        false,
                    )
                }
                Err(e) => (
                    CoordResponse::Rejected { code: e.code().into(), detail: e.to_string() },
                    false,
                ),
            }
        }
        CoordRequest::Release { lease_id } => {
            let mut table = shared.table.lock();
            table.advance_to(shared.now_tick());
            match table.release(lease_id) {
                Ok(()) => {
                    shared.journal_append(&CoordJournalEntry::Release {
                        lease_id,
                        tick: table.tick(),
                        epoch: table.epoch(),
                    });
                    (CoordResponse::Released, false)
                }
                Err(e) => (
                    CoordResponse::Rejected { code: e.code().into(), detail: e.to_string() },
                    false,
                ),
            }
        }
        CoordRequest::Revoke { lease_id } => {
            let mut table = shared.table.lock();
            table.advance_to(shared.now_tick());
            match table.revoke(lease_id) {
                Ok(()) => {
                    shared.journal_append(&CoordJournalEntry::Revoke {
                        lease_id,
                        tick: table.tick(),
                        epoch: table.epoch(),
                    });
                    (CoordResponse::Revoked, false)
                }
                Err(e) => (
                    CoordResponse::Rejected { code: e.code().into(), detail: e.to_string() },
                    false,
                ),
            }
        }
        CoordRequest::Stats => (CoordResponse::Stats(shared.stats()), false),
        CoordRequest::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            (CoordResponse::ShuttingDown, true)
        }
    }
}

/// A blocking client for the coordinator protocol (the shard lease
/// client, `acs coordinator --stats`, benches, tests).
pub struct CoordClient {
    stream: TcpStream,
}

impl CoordClient {
    /// Connect to a coordinator.
    pub fn connect(addr: &str) -> Result<Self, ProtocolError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Connect with a timeout on both the connect and later calls — the
    /// lease client uses this so a partitioned coordinator surfaces as a
    /// miss within one renewal interval, not a hung thread.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> Result<Self, ProtocolError> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Self { stream })
    }

    /// Send one request and wait for its response.
    pub fn call(&mut self, request: &CoordRequest) -> Result<CoordResponse, ProtocolError> {
        write_frame(&mut self.stream, request)?;
        match read_frame(&mut self.stream)? {
            ReadOutcome::Frame(resp) => Ok(resp),
            ReadOutcome::Eof => Err(ProtocolError::Io(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "coordinator closed mid-call",
            ))),
            ReadOutcome::Idle => Err(ProtocolError::Io(std::io::Error::new(
                ErrorKind::TimedOut,
                "coordinator call timed out",
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(test: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("acs-coord-{test}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn spawn(
        config: CoordinatorConfig,
    ) -> (String, CoordinatorHandle, std::thread::JoinHandle<()>) {
        let coord = Coordinator::bind(config).expect("bind succeeds");
        let addr = coord.local_addr().to_string();
        let handle = coord.handle();
        let join = std::thread::spawn(move || coord.run().expect("coordinator runs"));
        (addr, handle, join)
    }

    fn config(journal: Option<PathBuf>) -> CoordinatorConfig {
        CoordinatorConfig {
            global_cap_w: 100.0,
            floor_w: 5.0,
            // Slow ticks so nothing expires under the test.
            tick_ms: 60_000,
            ttl_ticks: 10,
            journal,
            ..CoordinatorConfig::default()
        }
    }

    #[test]
    fn grant_renew_release_over_the_wire() {
        let (addr, handle, join) = spawn(config(None));
        let mut c = CoordClient::connect(&addr).unwrap();

        let (lease_id, epoch) =
            match c.call(&CoordRequest::Lease { shard_id: None, demand_w: 10.0 }).unwrap() {
                CoordResponse::Granted { lease_id, shard_id, epoch, budget_w, ttl_ms, .. } => {
                    assert_eq!(shard_id, lease_id);
                    assert_eq!(budget_w, 100.0, "sole shard owns the pool");
                    assert_eq!(ttl_ms, 10 * 60_000);
                    (lease_id, epoch)
                }
                other => panic!("expected Granted, got {other:?}"),
            };

        match c.call(&CoordRequest::Renew { lease_id, epoch, demand_w: 12.0 }).unwrap() {
            CoordResponse::Renewed { budget_w, .. } => assert_eq!(budget_w, 100.0),
            other => panic!("expected Renewed, got {other:?}"),
        }

        match c.call(&CoordRequest::Stats).unwrap() {
            CoordResponse::Stats(s) => {
                assert_eq!((s.live_leases, s.grants, s.renews), (1, 1, 1));
                assert_eq!(s.overshoot_w, 0.0);
            }
            other => panic!("expected Stats, got {other:?}"),
        }

        match c.call(&CoordRequest::Release { lease_id }).unwrap() {
            CoordResponse::Released => {}
            other => panic!("expected Released, got {other:?}"),
        }
        match c.call(&CoordRequest::Renew { lease_id, epoch, demand_w: 0.0 }).unwrap() {
            CoordResponse::Rejected { code, .. } => assert_eq!(code, "unknown-lease"),
            other => panic!("expected Rejected, got {other:?}"),
        }

        handle.shutdown();
        join.join().unwrap();
        assert_eq!(handle.fleet_committed_w(), 0.0);
    }

    #[test]
    fn restart_replays_the_lease_table_and_readopts() {
        let dir = scratch("restart");
        let journal_path = dir.join("coord.journal");

        let (lease_id, epoch) = {
            let (addr, handle, join) = spawn(config(Some(journal_path.clone())));
            let mut c = CoordClient::connect(&addr).unwrap();
            let out = match c.call(&CoordRequest::Lease { shard_id: None, demand_w: 10.0 }).unwrap()
            {
                CoordResponse::Granted { lease_id, epoch, .. } => (lease_id, epoch),
                other => panic!("expected Granted, got {other:?}"),
            };
            // Abrupt death: no Release, no drain.
            handle.simulate_crash();
            join.join().unwrap();
            out
        };

        let (addr, handle, join) = spawn(config(Some(journal_path)));
        let recovery = handle.recovery().expect("a journaled coordinator reports recovery");
        assert_eq!(recovery.replayed, 1);
        assert_eq!(recovery.live_leases, vec![lease_id]);
        assert_eq!(handle.overshoot_w(), 0.0);

        // The shard's fence survived the restart: its next renewal just
        // works — no re-lease, no double grant.
        let mut c = CoordClient::connect(&addr).unwrap();
        match c.call(&CoordRequest::Renew { lease_id, epoch, demand_w: 10.0 }).unwrap() {
            CoordResponse::Renewed { lease_id: id, .. } => assert_eq!(id, lease_id),
            other => panic!("expected Renewed, got {other:?}"),
        }
        // And a full re-lease (e.g. the shard reconnected after a
        // partition that outlived the coordinator) re-adopts the same id.
        match c.call(&CoordRequest::Lease { shard_id: Some(lease_id), demand_w: 10.0 }).unwrap() {
            CoordResponse::Granted { lease_id: id, .. } => assert_eq!(id, lease_id),
            other => panic!("expected Granted, got {other:?}"),
        }
        match c.call(&CoordRequest::Stats).unwrap() {
            CoordResponse::Stats(s) => {
                assert_eq!(s.live_leases, 1, "re-adoption never duplicates a lease");
                assert_eq!(s.journal_replayed, 1);
                assert!(s.journal_appends >= 2, "the renewal and re-adoption were journaled");
            }
            other => panic!("expected Stats, got {other:?}"),
        }
        handle.shutdown();
        join.join().unwrap();
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn eviction_reclaims_a_silent_shards_reserve_over_the_wire() {
        let mut cfg = config(None);
        cfg.tick_ms = 1;
        cfg.ttl_ticks = 5;
        cfg.evict_after_ticks = 5;
        let (addr, handle, join) = spawn(cfg);
        let mut c = CoordClient::connect(&addr).unwrap();
        let (lease_id, shard_id) =
            match c.call(&CoordRequest::Lease { shard_id: None, demand_w: 0.0 }).unwrap() {
                CoordResponse::Granted { lease_id, shard_id, .. } => (lease_id, shard_id),
                other => panic!("expected Granted, got {other:?}"),
            };
        // Sleep past expiry + horizon, then drive any mutation to advance
        // the clock: the silent shard is evicted, not floor-parked.
        std::thread::sleep(Duration::from_millis(30));
        let _ = c.call(&CoordRequest::Lease { shard_id: None, demand_w: 0.0 });
        match c.call(&CoordRequest::Stats).unwrap() {
            CoordResponse::Stats(s) => {
                assert!(s.evicted_shards >= 1, "the silent shard was evicted");
                assert_eq!(s.encumbered_w, 0.0, "eviction reclaims the reserve");
                assert_eq!(s.overshoot_w, 0.0);
            }
            other => panic!("expected Stats, got {other:?}"),
        }
        // The returning shard re-admits as a fresh grant.
        match c.call(&CoordRequest::Lease { shard_id: Some(shard_id), demand_w: 0.0 }).unwrap() {
            CoordResponse::Granted { lease_id: id, shard_id: sid, .. } => {
                assert_ne!(id, lease_id, "burned lease ids stay burned");
                assert_eq!(sid, shard_id);
            }
            other => panic!("expected Granted, got {other:?}"),
        }
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn revoke_frees_a_dead_shards_encumbrance() {
        // Fast ticks so the lease actually expires under the test.
        let mut cfg = config(None);
        cfg.tick_ms = 1;
        cfg.ttl_ticks = 5;
        let (addr, handle, join) = spawn(cfg);
        let mut c = CoordClient::connect(&addr).unwrap();
        let lease_id = match c.call(&CoordRequest::Lease { shard_id: None, demand_w: 0.0 }).unwrap()
        {
            CoordResponse::Granted { lease_id, .. } => lease_id,
            other => panic!("expected Granted, got {other:?}"),
        };
        // Let the lease expire, then poke the clock with a Stats-adjacent
        // mutation (a denied grant advances time too; Stats alone does not
        // mutate, so drive an op).
        std::thread::sleep(Duration::from_millis(20));
        let _ = c.call(&CoordRequest::Lease { shard_id: None, demand_w: 0.0 });
        match c.call(&CoordRequest::Stats).unwrap() {
            CoordResponse::Stats(s) => {
                assert!(s.encumbered_leases >= 1, "the silent shard is encumbered");
                assert!(s.encumbered_w > 0.0);
            }
            other => panic!("expected Stats, got {other:?}"),
        }
        match c.call(&CoordRequest::Revoke { lease_id }).unwrap() {
            CoordResponse::Revoked => {}
            other => panic!("expected Revoked, got {other:?}"),
        }
        match c.call(&CoordRequest::Stats).unwrap() {
            CoordResponse::Stats(s) => {
                assert_eq!(s.encumbered_w, 0.0, "revocation frees the reserve");
                assert_eq!(s.revocations, 1);
            }
            other => panic!("expected Stats, got {other:?}"),
        }
        handle.shutdown();
        join.join().unwrap();
    }
}
