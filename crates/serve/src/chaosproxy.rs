//! A seeded fault-injecting TCP proxy, in the spirit of the PR-1
//! `FaultPlan`: the simulator's fault harness injected failures *inside*
//! the machine; this one injects them *around* the process, on the wire
//! between a client (loadgen, the resilient client, a test) and the
//! server. Jepsen-style, but deterministic: every fault decision comes
//! from a splitmix64 stream seeded by `(plan seed, connection index)`, so
//! a chaos run replays.
//!
//! The proxy is frame-aware in the client→server direction — it reads
//! whole length-prefixed frames and then decides, per frame, to
//!
//! - **disconnect**: drop both sides mid-conversation (mid-batch included),
//! - **tear**: forward the header and half the body, then close,
//! - **corrupt**: overwrite one payload byte with `0xFF` (never valid
//!   UTF-8, so the server *must* answer a typed `invalid-utf8` error —
//!   a random printable flip could accidentally remain valid JSON),
//! - **delay**: hold the frame for `delay_ms` before forwarding,
//! - **dribble**: slow-loris the frame — deliver it one byte per poll
//!   tick, so the server's read loop is exercised by a well-formed frame
//!   arriving arbitrarily slowly (not just by tears),
//! - **duplicate**: forward the frame twice (the server answers twice;
//!   a naive closed-loop client desyncs, which is the point),
//! - **partition**: open a proxy-wide blackhole window for
//!   `partition_ms`: both directions silently swallow bytes while every
//!   connection *stays open* — the network-partition shape (distinct from
//!   disconnect, which the peer observes immediately as EOF). Lease
//!   renewals crossing the window time out, which is what drives a shard
//!   into degraded mode.
//!
//! or forward it untouched. The server→client direction is a transparent
//! byte pump (except during a partition window): the contract under test
//! is the *server's* hardening, and asymmetric injection keeps every
//! fault attributable.
//!
//! The hardening contract (checked by `tests/chaosproxy.rs` and the
//! `bench_recovery` smoke): every injected fault maps to a typed
//! [`ProtocolError`](crate::ProtocolError) response or a clean session
//! drop — never a panic, and never a poisoned arbiter (budget
//! conservation holds after every disconnect).

use crate::protocol::MAX_FRAME_LEN;
use crate::server::{sig, ServeError};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Accept-loop poll interval, matching the server's.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Pump read timeout; bounds shutdown latency.
const PUMP_READ_TIMEOUT: Duration = Duration::from_millis(50);

/// Per-frame fault probabilities. Probabilities are evaluated in the
/// documented order (disconnect, tear, corrupt, delay, duplicate) against
/// a single roll, so their sum must stay ≤ 1.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChaosPlan {
    /// Seed of the fault-decision stream.
    pub seed: u64,
    /// P(drop both directions mid-conversation).
    pub disconnect_p: f64,
    /// P(forward a torn frame — header plus half the body — then close).
    pub tear_p: f64,
    /// P(overwrite one payload byte with `0xFF`).
    pub corrupt_p: f64,
    /// P(hold the frame for `delay_ms`).
    pub delay_p: f64,
    /// Delay duration, ms.
    pub delay_ms: u64,
    /// P(slow-loris the frame: one byte per poll tick). Absent in plans
    /// serialized before the fault existed, hence the serde default.
    #[serde(default)]
    pub dribble_p: f64,
    /// P(forward the frame twice).
    pub dup_p: f64,
    /// P(open a proxy-wide partition window: both directions blackhole
    /// for `partition_ms` while connections stay open).
    pub partition_p: f64,
    /// Partition-window length, ms.
    pub partition_ms: u64,
}

impl Default for ChaosPlan {
    fn default() -> Self {
        Self {
            seed: 2014,
            disconnect_p: 0.02,
            tear_p: 0.02,
            corrupt_p: 0.02,
            delay_p: 0.05,
            delay_ms: 20,
            dribble_p: 0.02,
            dup_p: 0.02,
            partition_p: 0.0,
            partition_ms: 0,
        }
    }
}

impl ChaosPlan {
    /// A plan that injects nothing (a transparent proxy).
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            disconnect_p: 0.0,
            tear_p: 0.0,
            corrupt_p: 0.0,
            delay_p: 0.0,
            dribble_p: 0.0,
            dup_p: 0.0,
            delay_ms: 0,
            partition_p: 0.0,
            partition_ms: 0,
        }
    }

    /// Validate probabilities: each in [0, 1], summing to ≤ 1.
    pub fn validate(&self) -> Result<(), String> {
        let ps = [
            ("disconnect", self.disconnect_p),
            ("tear", self.tear_p),
            ("corrupt", self.corrupt_p),
            ("delay", self.delay_p),
            ("dribble", self.dribble_p),
            ("dup", self.dup_p),
            ("partition", self.partition_p),
        ];
        for (name, p) in ps {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} probability {p} is outside [0, 1]"));
            }
        }
        let total: f64 = ps.iter().map(|(_, p)| p).sum();
        if total > 1.0 {
            return Err(format!("fault probabilities sum to {total}, above 1"));
        }
        Ok(())
    }
}

/// Counters of what the proxy actually injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ChaosStats {
    /// Connections accepted.
    pub connections: u64,
    /// Client→server frames seen (including faulted ones).
    pub frames: u64,
    /// Frames forwarded untouched.
    pub forwarded: u64,
    /// Mid-conversation disconnects injected.
    pub disconnects: u64,
    /// Torn frames injected.
    pub torn: u64,
    /// Corrupted frames injected.
    pub corrupted: u64,
    /// Delayed frames injected.
    pub delayed: u64,
    /// Dribbled (slow-loris) frames injected.
    #[serde(default)]
    pub dribbled: u64,
    /// Duplicated frames injected.
    pub duplicated: u64,
    /// Partition windows opened.
    pub partitions: u64,
    /// Frames and byte chunks silently swallowed inside partition windows.
    pub blackholed: u64,
}

impl ChaosStats {
    /// Total faults injected (blackholed traffic is a consequence of a
    /// partition window, not a separate injection).
    pub fn faults(&self) -> u64 {
        self.disconnects
            + self.torn
            + self.corrupted
            + self.delayed
            + self.dribbled
            + self.duplicated
            + self.partitions
    }
}

struct ProxyShared {
    upstream: String,
    plan: ChaosPlan,
    shutdown: AtomicBool,
    /// When the proxy started; partition deadlines are ms since this.
    started: Instant,
    /// End of the current partition window, ms since `started` (0 = none).
    /// Proxy-wide on purpose: a network partition severs every connection
    /// crossing it at once, not one frame stream.
    partition_until_ms: AtomicU64,
    connections: AtomicU64,
    frames: AtomicU64,
    forwarded: AtomicU64,
    disconnects: AtomicU64,
    torn: AtomicU64,
    corrupted: AtomicU64,
    delayed: AtomicU64,
    dribbled: AtomicU64,
    duplicated: AtomicU64,
    partitions: AtomicU64,
    blackholed: AtomicU64,
}

impl ProxyShared {
    /// Whether a partition window is currently open.
    fn partition_active(&self) -> bool {
        let now_ms = self.started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64;
        now_ms < self.partition_until_ms.load(Ordering::SeqCst)
    }

    /// Open (or extend) a partition window of `ms` from now.
    fn open_partition(&self, ms: u64) {
        let now_ms = self.started.elapsed().as_millis().min(u128::from(u64::MAX)) as u64;
        self.partition_until_ms.fetch_max(now_ms.saturating_add(ms), Ordering::SeqCst);
        self.partitions.fetch_add(1, Ordering::Relaxed);
    }
}

/// Observe and stop a running proxy from another thread.
#[derive(Clone)]
pub struct ChaosProxyHandle {
    shared: Arc<ProxyShared>,
}

impl ChaosProxyHandle {
    /// Ask the accept loop and every pump to drain.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Snapshot of the injection counters.
    pub fn stats(&self) -> ChaosStats {
        let s = &self.shared;
        ChaosStats {
            connections: s.connections.load(Ordering::Relaxed),
            frames: s.frames.load(Ordering::Relaxed),
            forwarded: s.forwarded.load(Ordering::Relaxed),
            disconnects: s.disconnects.load(Ordering::Relaxed),
            torn: s.torn.load(Ordering::Relaxed),
            corrupted: s.corrupted.load(Ordering::Relaxed),
            delayed: s.delayed.load(Ordering::Relaxed),
            dribbled: s.dribbled.load(Ordering::Relaxed),
            duplicated: s.duplicated.load(Ordering::Relaxed),
            partitions: s.partitions.load(Ordering::Relaxed),
            blackholed: s.blackholed.load(Ordering::Relaxed),
        }
    }

    /// Force a partition window of `ms` open right now (the benches and
    /// tests use this for a deterministic partition instead of a roll).
    pub fn partition(&self, ms: u64) {
        self.shared.open_partition(ms);
    }

    /// Whether a partition window is currently open.
    pub fn partition_active(&self) -> bool {
        self.shared.partition_active()
    }
}

/// A bound, not-yet-running chaos proxy.
pub struct ChaosProxy {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<ProxyShared>,
}

impl ChaosProxy {
    /// Bind `listen` (`host:port`, port 0 for ephemeral) and prepare to
    /// forward every connection to `upstream` under `plan`.
    pub fn bind(listen: &str, upstream: &str, plan: ChaosPlan) -> Result<Self, ServeError> {
        plan.validate().map_err(|detail| ServeError::Bind { addr: listen.into(), detail })?;
        let listener = TcpListener::bind(listen)
            .map_err(|e| ServeError::Bind { addr: listen.into(), detail: e.to_string() })?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Bind { addr: listen.into(), detail: e.to_string() })?;
        listener.set_nonblocking(true).map_err(|e| ServeError::Io(e.to_string()))?;
        Ok(Self {
            listener,
            addr,
            shared: Arc::new(ProxyShared {
                upstream: upstream.to_string(),
                plan,
                shutdown: AtomicBool::new(false),
                started: Instant::now(),
                partition_until_ms: AtomicU64::new(0),
                connections: AtomicU64::new(0),
                frames: AtomicU64::new(0),
                forwarded: AtomicU64::new(0),
                disconnects: AtomicU64::new(0),
                torn: AtomicU64::new(0),
                corrupted: AtomicU64::new(0),
                delayed: AtomicU64::new(0),
                dribbled: AtomicU64::new(0),
                duplicated: AtomicU64::new(0),
                partitions: AtomicU64::new(0),
                blackholed: AtomicU64::new(0),
            }),
        })
    }

    /// The address actually bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle usable while [`run`](Self::run) blocks.
    pub fn handle(&self) -> ChaosProxyHandle {
        ChaosProxyHandle { shared: Arc::clone(&self.shared) }
    }

    /// Proxy until SIGINT or [`ChaosProxyHandle::shutdown`], then drain.
    pub fn run(self) -> Result<(), ServeError> {
        sig::install();
        let mut pumps: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if sig::pending() {
                self.shared.shutdown.store(true, Ordering::SeqCst);
            }
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((client, _peer)) => {
                    let conn_id = self.shared.connections.fetch_add(1, Ordering::SeqCst);
                    let shared = Arc::clone(&self.shared);
                    pumps.push(std::thread::spawn(move || handle_conn(shared, client, conn_id)));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(ServeError::Io(e.to_string())),
            }
        }
        for pump in pumps {
            let _ = pump.join();
        }
        Ok(())
    }
}

/// splitmix64, seeded per connection so chaos runs replay.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in [0, 1).
fn next_f64(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// One proxied connection: spawn the transparent server→client pump,
/// run the fault-injecting client→server pump inline, then tear both
/// sides down.
fn handle_conn(shared: Arc<ProxyShared>, client: TcpStream, conn_id: u64) {
    let Ok(server) = TcpStream::connect(&shared.upstream) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    let _ = client.set_read_timeout(Some(PUMP_READ_TIMEOUT));
    let _ = server.set_read_timeout(Some(PUMP_READ_TIMEOUT));

    let (Ok(server_read), Ok(client_write)) = (server.try_clone(), client.try_clone()) else {
        let _ = client.shutdown(Shutdown::Both);
        let _ = server.shutdown(Shutdown::Both);
        return;
    };
    let back_shared = Arc::clone(&shared);
    let back = std::thread::spawn(move || pump_bytes(server_read, client_write, &back_shared));

    inject_frames(&shared, client.try_clone().ok(), client, server, conn_id);
    let _ = back.join();
}

/// Transparent byte pump (server→client). Exits on EOF, error, or proxy
/// shutdown; closing its streams unblocks the other pump too.
fn pump_bytes(mut from: TcpStream, mut to: TcpStream, shared: &ProxyShared) {
    let mut buf = [0u8; 4096];
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                // Inside a partition window the bytes vanish: the sender
                // saw a successful write, the receiver sees silence, and
                // the connection stays open — unlike a disconnect.
                if shared.partition_active() {
                    shared.blackholed.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => break,
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// Read one raw length-prefixed frame (idle-aware). `Ok(None)` = clean
/// EOF or shutdown; oversized prefixes are passed back to the caller as
/// a frame with an empty body so the bytes still reach the server, which
/// answers with its own typed `oversized` error.
fn read_raw_frame(
    stream: &mut TcpStream,
    shared: &ProxyShared,
) -> Result<Option<(u32, Vec<u8>)>, ()> {
    let mut header = [0u8; 4];
    let mut got = 0usize;
    while got < header.len() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(None);
        }
        match stream.read(&mut header[got..]) {
            Ok(0) => return if got == 0 { Ok(None) } else { Err(()) },
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => return Err(()),
        }
    }
    let len = u32::from_be_bytes(header);
    if len as usize > MAX_FRAME_LEN {
        // Forward the hostile prefix as-is; the server rejects it typed.
        return Ok(Some((len, Vec::new())));
    }
    let mut body = vec![0u8; len as usize];
    let mut got = 0usize;
    while got < body.len() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(None);
        }
        match stream.read(&mut body[got..]) {
            Ok(0) => return Err(()),
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
            Err(_) => return Err(()),
        }
    }
    Ok(Some((len, body)))
}

/// The fault-injecting client→server pump.
fn inject_frames(
    shared: &ProxyShared,
    client_close: Option<TcpStream>,
    mut client: TcpStream,
    mut server: TcpStream,
    conn_id: u64,
) {
    let plan = shared.plan;
    let mut rng = plan.seed ^ splitmix64(&mut { conn_id.wrapping_add(1) });
    let close_both = |server: &TcpStream| {
        let _ = server.shutdown(Shutdown::Both);
        if let Some(c) = &client_close {
            let _ = c.shutdown(Shutdown::Both);
        }
    };
    while let Ok(Some((len, mut body))) = read_raw_frame(&mut client, shared) {
        shared.frames.fetch_add(1, Ordering::Relaxed);
        if len as usize > MAX_FRAME_LEN {
            // Oversized prefix from a hostile client: forward verbatim and
            // stop being frame-aware (the server closes after its typed
            // error anyway).
            let _ = server.write_all(&len.to_be_bytes());
            let _ = server.flush();
            continue;
        }

        // A frame arriving inside a partition window is swallowed whole —
        // no fault roll, no forwarding, connection intact.
        if shared.partition_active() {
            shared.blackholed.fetch_add(1, Ordering::Relaxed);
            continue;
        }

        let roll = next_f64(&mut rng);
        let mut edge = plan.partition_p;
        if roll < edge {
            // Open the window and swallow the triggering frame with it.
            shared.open_partition(plan.partition_ms);
            shared.blackholed.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        edge += plan.disconnect_p;
        if roll < edge {
            shared.disconnects.fetch_add(1, Ordering::Relaxed);
            close_both(&server);
            break;
        }
        edge += plan.tear_p;
        if roll < edge {
            shared.torn.fetch_add(1, Ordering::Relaxed);
            let half = body.len() / 2;
            let _ = server.write_all(&len.to_be_bytes());
            let _ = server.write_all(&body[..half]);
            let _ = server.flush();
            close_both(&server);
            break;
        }
        edge += plan.corrupt_p;
        if roll < edge && !body.is_empty() {
            shared.corrupted.fetch_add(1, Ordering::Relaxed);
            let at = (splitmix64(&mut rng) % body.len() as u64) as usize;
            body[at] = 0xFF;
        } else {
            edge += plan.delay_p;
            if roll < edge {
                shared.delayed.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(plan.delay_ms));
            } else {
                edge += plan.dribble_p;
                if roll < edge {
                    // Slow-loris: the whole (well-formed) frame arrives
                    // one byte per tick; nothing left for the fall-through
                    // write below.
                    shared.dribbled.fetch_add(1, Ordering::Relaxed);
                    if dribble_frame(&mut server, len, &body).is_err() {
                        break;
                    }
                    continue;
                }
                edge += plan.dup_p;
                if roll < edge {
                    shared.duplicated.fetch_add(1, Ordering::Relaxed);
                    if write_frame_raw(&mut server, len, &body).is_err() {
                        break;
                    }
                } else {
                    shared.forwarded.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if write_frame_raw(&mut server, len, &body).is_err() {
            break;
        }
    }
    let _ = server.shutdown(Shutdown::Both);
    let _ = client.shutdown(Shutdown::Both);
}

fn write_frame_raw(stream: &mut TcpStream, len: u32, body: &[u8]) -> std::io::Result<()> {
    stream.write_all(&len.to_be_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// One byte per poll tick, header included — the slow-loris shape the
/// `dribble` fault injects.
const DRIBBLE_TICK: Duration = Duration::from_millis(1);

fn dribble_frame(stream: &mut TcpStream, len: u32, body: &[u8]) -> std::io::Result<()> {
    for byte in len.to_be_bytes().iter().chain(body.iter()) {
        stream.write_all(std::slice::from_ref(byte))?;
        stream.flush()?;
        std::thread::sleep(DRIBBLE_TICK);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_validates() {
        assert!(ChaosPlan::default().validate().is_ok());
        assert!(ChaosPlan::quiet(7).validate().is_ok());
    }

    #[test]
    fn out_of_range_probabilities_are_rejected() {
        let plan = ChaosPlan { tear_p: 1.5, ..ChaosPlan::quiet(1) };
        assert!(plan.validate().unwrap_err().contains("tear"));
        let plan = ChaosPlan { corrupt_p: -0.1, ..ChaosPlan::quiet(1) };
        assert!(plan.validate().unwrap_err().contains("corrupt"));
        let plan =
            ChaosPlan { disconnect_p: 0.5, tear_p: 0.4, corrupt_p: 0.3, ..ChaosPlan::quiet(1) };
        assert!(plan.validate().unwrap_err().contains("sum"));
    }

    #[test]
    fn fault_rolls_are_deterministic_per_seed() {
        let draw = |seed: u64| -> Vec<u64> {
            let mut s = seed;
            (0..8).map(|_| splitmix64(&mut s)).collect()
        };
        assert_eq!(draw(2014), draw(2014));
        assert_ne!(draw(2014), draw(2015));
        let mut s = 1;
        for _ in 0..100 {
            let f = next_f64(&mut s);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn stats_faults_sums_the_injections() {
        let s = ChaosStats {
            connections: 1,
            frames: 10,
            forwarded: 5,
            disconnects: 1,
            torn: 1,
            corrupted: 1,
            delayed: 1,
            dribbled: 1,
            duplicated: 1,
            partitions: 1,
            blackholed: 3,
        };
        assert_eq!(s.faults(), 7);
    }

    #[test]
    fn partition_probability_participates_in_validation() {
        let plan = ChaosPlan { partition_p: 1.5, ..ChaosPlan::quiet(1) };
        assert!(plan.validate().unwrap_err().contains("partition"));
        let plan =
            ChaosPlan { disconnect_p: 0.5, tear_p: 0.3, partition_p: 0.3, ..ChaosPlan::quiet(1) };
        assert!(plan.validate().unwrap_err().contains("sum"));
    }

    #[test]
    fn partition_windows_open_extend_and_close() {
        let shared = ProxyShared {
            upstream: String::new(),
            plan: ChaosPlan::quiet(1),
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            partition_until_ms: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            frames: AtomicU64::new(0),
            forwarded: AtomicU64::new(0),
            disconnects: AtomicU64::new(0),
            torn: AtomicU64::new(0),
            corrupted: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
            dribbled: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            partitions: AtomicU64::new(0),
            blackholed: AtomicU64::new(0),
        };
        assert!(!shared.partition_active());
        shared.open_partition(60_000);
        assert!(shared.partition_active());
        assert_eq!(shared.partitions.load(Ordering::Relaxed), 1);
        // A second window only ever extends the deadline.
        let before = shared.partition_until_ms.load(Ordering::SeqCst);
        shared.open_partition(1);
        assert!(shared.partition_until_ms.load(Ordering::SeqCst) >= before);
        // Forcing the deadline into the past closes the window.
        shared.partition_until_ms.store(1, Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(2));
        assert!(!shared.partition_active());
    }
}
