//! The cluster power-budget arbiter.
//!
//! The paper selects configurations under a *node-level* cap; its
//! motivating setting (PAPER.md §I) is an overprovisioned cluster where a
//! global budget must be split across nodes. The arbiter treats every
//! connected session as a node and partitions the global cap across them.
//! Two policies:
//!
//! - **Equal share**: every node gets `cap / n`. The baseline.
//! - **Demand proportional**: half the cap is a guaranteed floor split
//!   equally (no node starves), the other half is distributed in
//!   proportion to each node's *demand* — how little residual headroom
//!   (`residual_w`, reported by the node from its `limiter` measurements)
//!   it has under its current budget. A node running far below its budget
//!   donates watts to nodes running at theirs.
//!
//! Budgets change only when nodes join, leave, or report; every change
//! bumps an epoch counter so sessions can detect a reshuffle with one
//! atomic-free comparison and re-run selection ([`CappedRuntime::set_cap`]
//! re-selects from cached frontiers — the Section III-C dynamic-constraint
//! property).
//!
//! [`CappedRuntime::set_cap`]: acs_core::CappedRuntime::set_cap

use std::collections::BTreeMap;

/// Minimum budget change, W, that counts as a reshuffle.
const RESHUFFLE_EPS_W: f64 = 1e-9;

/// Fold the floating-point remainder of a split onto the first share so
/// the shares sum back to `target` *exactly*. f64 splits do not sum back
/// to the target in general (`cap/n * n ≠ cap`), and the drift compounds
/// across rebalances into a violated conservation invariant. Each fold
/// re-rounds, so iterate until the re-summed total lands exactly on the
/// target (one or two passes in practice; the bound guards the
/// pathological case where the remainder is below one ulp of the first
/// share and the fold cannot make progress). Shared by the per-process
/// arbiter and the fleet lease table — both conservation gates ride on it.
pub(crate) fn fold_exact_sum(target: f64, shares: &mut [f64]) {
    if shares.is_empty() {
        return;
    }
    for _ in 0..4 {
        let residual = target - shares.iter().sum::<f64>();
        if residual == 0.0 {
            break;
        }
        shares[0] += residual;
    }
}

/// How the global cap is split across nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbiterPolicy {
    /// `cap / n` for every node.
    EqualShare,
    /// An equal floor for half the cap; the rest follows reported demand.
    DemandProportional,
}

impl ArbiterPolicy {
    /// Stable name (the CLI `--policy` value).
    pub fn name(&self) -> &'static str {
        match self {
            ArbiterPolicy::EqualShare => "equal",
            ArbiterPolicy::DemandProportional => "demand",
        }
    }
}

impl std::str::FromStr for ArbiterPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "equal" => Ok(ArbiterPolicy::EqualShare),
            "demand" => Ok(ArbiterPolicy::DemandProportional),
            other => Err(format!("unknown arbiter policy '{other}' (expected equal|demand)")),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct NodeState {
    /// Last reported residual headroom, W (budget minus measured power).
    residual_w: f64,
    /// Current budget, W.
    budget_w: f64,
}

/// Partitions a global power cap across connected nodes.
#[derive(Debug)]
pub struct Arbiter {
    global_cap_w: f64,
    policy: ArbiterPolicy,
    nodes: BTreeMap<u64, NodeState>,
    rebalances: u64,
    epoch: u64,
}

impl Arbiter {
    /// An arbiter over a positive global cap.
    pub fn new(global_cap_w: f64, policy: ArbiterPolicy) -> Self {
        assert!(global_cap_w > 0.0, "global cap must be positive");
        Self { global_cap_w, policy, nodes: BTreeMap::new(), rebalances: 0, epoch: 0 }
    }

    /// The global cap, W.
    pub fn global_cap_w(&self) -> f64 {
        self.global_cap_w
    }

    /// Replace the global cap and re-partition. This is the lease binding:
    /// a shard's arbiter runs *inside* its coordinator lease, so a granted,
    /// renewed, or degraded lease budget lands here and every session picks
    /// the reshuffle up through the epoch counter. Non-positive or
    /// non-finite caps are ignored (a lease can shrink, never vanish), and
    /// an unchanged cap does not bump the epoch.
    pub fn set_global_cap(&mut self, cap_w: f64) {
        if !cap_w.is_finite() || cap_w <= 0.0 || cap_w == self.global_cap_w {
            return;
        }
        self.global_cap_w = cap_w;
        self.rebalance();
    }

    /// The active policy.
    pub fn policy(&self) -> ArbiterPolicy {
        self.policy
    }

    /// Number of connected nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// How many times a rebalance actually changed at least one budget.
    pub fn rebalances(&self) -> u64 {
        self.rebalances
    }

    /// Monotonic counter bumped on every budget change; sessions compare
    /// it against their last seen value to detect reshuffles cheaply.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Admit a node and return its budget. A fresh node starts with zero
    /// reported residual (maximum demand) until its first report.
    pub fn join(&mut self, node_id: u64) -> f64 {
        self.nodes.insert(node_id, NodeState { residual_w: 0.0, budget_w: 0.0 });
        self.rebalance();
        self.nodes[&node_id].budget_w
    }

    /// Remove a node; its watts flow back to the survivors.
    pub fn leave(&mut self, node_id: u64) {
        if self.nodes.remove(&node_id).is_some() {
            self.rebalance();
        }
    }

    /// Ingest a node's residual-headroom report and re-partition.
    /// Returns the node's budget after the rebalance (`None` for an
    /// unknown node). Non-finite reports are ignored.
    pub fn report(&mut self, node_id: u64, residual_w: f64) -> Option<f64> {
        let node = self.nodes.get_mut(&node_id)?;
        if residual_w.is_finite() {
            node.residual_w = residual_w;
        }
        self.rebalance();
        Some(self.nodes[&node_id].budget_w)
    }

    /// A node's current budget, W.
    pub fn budget_of(&self, node_id: u64) -> Option<f64> {
        self.nodes.get(&node_id).map(|n| n.budget_w)
    }

    /// Node ids currently admitted, ascending.
    pub fn node_ids(&self) -> Vec<u64> {
        self.nodes.keys().copied().collect()
    }

    /// Sum of all per-node budgets, W. With at least one node this is
    /// *exactly* the global cap — [`rebalance`](Self::join) assigns the
    /// floating-point remainder of the split to the lowest node id.
    pub fn budget_sum_w(&self) -> f64 {
        self.nodes.values().map(|n| n.budget_w).sum()
    }

    /// `|budget_sum - global_cap|`, the conservation invariant the chaos
    /// tests check after every disconnect. Zero with no nodes admitted.
    pub fn conservation_error_w(&self) -> f64 {
        if self.nodes.is_empty() {
            0.0
        } else {
            (self.budget_sum_w() - self.global_cap_w).abs()
        }
    }

    /// Re-partition the cap per the policy; bump counters when any budget
    /// moved by more than [`RESHUFFLE_EPS_W`].
    fn rebalance(&mut self) {
        let n = self.nodes.len();
        if n == 0 {
            return;
        }
        let mut shares: Vec<f64> = match self.policy {
            ArbiterPolicy::EqualShare => vec![self.global_cap_w / n as f64; n],
            ArbiterPolicy::DemandProportional => {
                let floor = 0.5 * self.global_cap_w / n as f64;
                let pool = 0.5 * self.global_cap_w;
                // Demand: a node with no headroom left wants watts; a node
                // with lots of residual donates. Shift so the hungriest
                // node defines zero demand offset and everything stays
                // non-negative.
                let max_residual = self
                    .nodes
                    .values()
                    .map(|s| s.residual_w.max(0.0))
                    .fold(f64::NEG_INFINITY, f64::max);
                let demands: Vec<f64> = self
                    .nodes
                    .values()
                    .map(|s| (max_residual - s.residual_w.max(0.0)).max(0.0))
                    .collect();
                let total: f64 = demands.iter().sum();
                if total <= RESHUFFLE_EPS_W {
                    // Indistinguishable demands: split the pool equally.
                    vec![floor + pool / n as f64; n]
                } else {
                    demands.iter().map(|d| floor + pool * d / total).collect()
                }
            }
        };
        // Fold the rounding remainder onto the lowest node id —
        // deterministic, and at most a few ulp.
        fold_exact_sum(self.global_cap_w, &mut shares);
        let mut changed = false;
        for (state, share) in self.nodes.values_mut().zip(shares) {
            if (state.budget_w - share).abs() > RESHUFFLE_EPS_W {
                changed = true;
            }
            state.budget_w = share;
        }
        debug_assert!(
            self.conservation_error_w() <= RESHUFFLE_EPS_W,
            "budgets sum to {} under a {} W cap",
            self.budget_sum_w(),
            self.global_cap_w
        );
        if changed {
            self.rebalances += 1;
            self.epoch += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_share_splits_evenly() {
        let mut a = Arbiter::new(120.0, ArbiterPolicy::EqualShare);
        assert_eq!(a.join(1), 120.0);
        assert_eq!(a.join(2), 60.0);
        let b3 = a.join(3);
        assert!((b3 - 40.0).abs() < 1e-9);
        assert_eq!(a.budget_of(1), Some(b3));
        a.leave(2);
        assert!((a.budget_of(1).unwrap() - 60.0).abs() < 1e-9);
    }

    #[test]
    fn budgets_sum_to_cap_under_both_policies() {
        for policy in [ArbiterPolicy::EqualShare, ArbiterPolicy::DemandProportional] {
            let mut a = Arbiter::new(90.0, policy);
            for id in 0..5 {
                a.join(id);
            }
            a.report(0, 12.0);
            a.report(1, 0.5);
            a.report(3, 30.0);
            let total: f64 = (0..5).map(|id| a.budget_of(id).unwrap()).sum();
            assert!((total - 90.0).abs() < 1e-6, "{policy:?}: budgets sum to {total}");
        }
    }

    #[test]
    fn budgets_sum_exactly_to_cap_with_awkward_splits() {
        // 100/7 is not representable; without the remainder fold the sum
        // drifts off the cap by a few ulp and compounds over rebalances.
        for policy in [ArbiterPolicy::EqualShare, ArbiterPolicy::DemandProportional] {
            let mut a = Arbiter::new(100.0, policy);
            for id in 0..7 {
                a.join(id);
            }
            a.report(2, 7.7);
            a.report(5, 0.3);
            assert_eq!(a.budget_sum_w(), 100.0, "{policy:?}");
            assert_eq!(a.conservation_error_w(), 0.0, "{policy:?}");
            a.leave(3);
            assert_eq!(a.budget_sum_w(), 100.0, "{policy:?} after leave");
        }
    }

    #[test]
    fn remainder_goes_to_the_lowest_node_id() {
        let mut a = Arbiter::new(100.0, ArbiterPolicy::EqualShare);
        for id in [5, 9, 3] {
            a.join(id);
        }
        // The two higher ids keep the untouched even split; node 3 absorbs
        // whatever is left so the total is exact.
        let even = 100.0 / 3.0;
        assert_eq!(a.budget_of(5), Some(even));
        assert_eq!(a.budget_of(9), Some(even));
        assert_eq!(a.budget_sum_w(), 100.0);
        assert!((a.budget_of(3).unwrap() - even).abs() < 1e-9);
    }

    #[test]
    fn conservation_error_is_zero_with_no_nodes() {
        let a = Arbiter::new(50.0, ArbiterPolicy::DemandProportional);
        assert_eq!(a.conservation_error_w(), 0.0);
        assert_eq!(a.budget_sum_w(), 0.0);
        assert!(a.node_ids().is_empty());
    }

    #[test]
    fn demand_proportional_favors_hungry_nodes() {
        let mut a = Arbiter::new(100.0, ArbiterPolicy::DemandProportional);
        a.join(1);
        a.join(2);
        // Node 1 has lots of headroom (low demand); node 2 has none.
        a.report(1, 20.0);
        a.report(2, 0.0);
        let b1 = a.budget_of(1).unwrap();
        let b2 = a.budget_of(2).unwrap();
        assert!(b2 > b1, "hungry node got {b2}, satisfied node got {b1}");
        // The floor guarantees at least half an equal share.
        assert!(b1 >= 0.5 * 100.0 / 2.0 - 1e-9);
    }

    #[test]
    fn equal_demands_split_the_pool_equally() {
        let mut a = Arbiter::new(80.0, ArbiterPolicy::DemandProportional);
        a.join(1);
        a.join(2);
        let b1 = a.budget_of(1).unwrap();
        let b2 = a.budget_of(2).unwrap();
        assert!((b1 - 40.0).abs() < 1e-9 && (b2 - 40.0).abs() < 1e-9);
    }

    #[test]
    fn epoch_moves_only_on_real_reshuffles() {
        let mut a = Arbiter::new(100.0, ArbiterPolicy::EqualShare);
        a.join(1);
        let e = a.epoch();
        // Same residual report under equal share changes nothing.
        a.report(1, 5.0);
        assert_eq!(a.epoch(), e);
        a.join(2);
        assert!(a.epoch() > e);
    }

    #[test]
    fn ignores_unknown_and_non_finite() {
        let mut a = Arbiter::new(100.0, ArbiterPolicy::DemandProportional);
        a.join(1);
        assert_eq!(a.report(99, 1.0), None);
        let before = a.budget_of(1).unwrap();
        a.report(1, f64::NAN);
        assert_eq!(a.budget_of(1).unwrap(), before);
    }

    #[test]
    fn rebalances_counts_changes() {
        let mut a = Arbiter::new(100.0, ArbiterPolicy::DemandProportional);
        a.join(1);
        a.join(2);
        let r = a.rebalances();
        a.report(1, 25.0);
        assert!(a.rebalances() > r, "a demand swing must count as a rebalance");
    }

    #[test]
    fn set_global_cap_rebalances_exactly() {
        let mut a = Arbiter::new(100.0, ArbiterPolicy::DemandProportional);
        for id in 0..3 {
            a.join(id);
        }
        let e = a.epoch();
        a.set_global_cap(61.3);
        assert!(a.epoch() > e, "a real cap change is a reshuffle");
        assert_eq!(a.global_cap_w(), 61.3);
        assert_eq!(a.budget_sum_w(), 61.3);
        assert_eq!(a.conservation_error_w(), 0.0);
        // Unchanged, non-positive, and non-finite caps are all ignored.
        let e = a.epoch();
        a.set_global_cap(61.3);
        a.set_global_cap(0.0);
        a.set_global_cap(-4.0);
        a.set_global_cap(f64::NAN);
        assert_eq!(a.epoch(), e);
        assert_eq!(a.global_cap_w(), 61.3);
    }

    #[test]
    fn policy_parses() {
        assert_eq!("equal".parse::<ArbiterPolicy>().unwrap(), ArbiterPolicy::EqualShare);
        assert_eq!("demand".parse::<ArbiterPolicy>().unwrap(), ArbiterPolicy::DemandProportional);
        assert!("fair".parse::<ArbiterPolicy>().is_err());
        assert_eq!(ArbiterPolicy::DemandProportional.name(), "demand");
    }
}
