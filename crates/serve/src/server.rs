//! The connection layer: listener, admission control, per-session loops.
//!
//! The accept loop is non-blocking and polls a shutdown flag, so SIGINT
//! and the `Shutdown` poison request both drain the server the same way:
//! stop accepting, let every session observe the flag at its next read
//! timeout (≤ ~100 ms), join the session threads, leave the arbiter empty.
//!
//! Admission control is a hard bound, not a queue: when `max_sessions`
//! sessions are live, a new connection is answered with one typed
//! [`Response::Overloaded`] frame and closed. Nothing in the server
//! buffers unboundedly — see DESIGN.md §11.

use crate::arbiter::{Arbiter, ArbiterPolicy};
use crate::coordinator::CoordClient;
use crate::engine::{Engine, EngineError};
use crate::journal::{replay, Journal, JournalEntry, Recovery};
use crate::lease::{CoordRequest, CoordResponse, ShardLease};
use crate::metrics::{LeaseReport, Metrics};
use crate::protocol::{
    read_frame, write_frame, ProtocolError, ReadOutcome, ReportFeedback, Request, Response,
    Selection,
};
use acs_core::{AdaptivePredictor, CappedRuntime, DriftEvent, GuardPolicy, TrainedModel};
use acs_sim::{Configuration, FamilyId, Machine};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Per-session read timeout; bounds how long a session takes to observe
/// the shutdown flag.
const SESSION_READ_TIMEOUT: Duration = Duration::from_millis(100);

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Interface to bind.
    pub host: String,
    /// Port to bind; `0` asks the OS for an ephemeral port.
    pub port: u16,
    /// Machine noise seed (each session simulates its own node machine).
    pub seed: u64,
    /// Machine family every session node (and the shared profile engine)
    /// instantiates — a heterogeneous fleet runs one server per family.
    pub family: FamilyId,
    /// Global cluster power cap, W, partitioned by the arbiter.
    pub global_cap_w: f64,
    /// Budget-partition policy.
    pub policy: ArbiterPolicy,
    /// Hard bound on concurrent sessions.
    pub max_sessions: usize,
    /// Hard bound on kernels per `Batch` request.
    pub max_batch: usize,
    /// Ring-buffer capacity of each session's scheduling timeline.
    pub timeline_capacity: usize,
    /// Recovery-journal path. `Some` makes admissions, arbiter reshuffles,
    /// and first-time cache misses durable: a restarted server replays the
    /// journal and resumes with identical budgets and a warm cache.
    pub journal: Option<std::path::PathBuf>,
    /// `true` upgrades journal durability from flush-per-append to
    /// `sync_data()`-per-append (the `--journal-sync` flag).
    pub journal_sync: bool,
    /// Coordinator address (`host:port`). `Some` turns this server into a
    /// fleet shard: `global_cap_w` becomes its *demand*, and the cap it
    /// actually enforces is whatever its lease grants (starting from
    /// `lease_floor_w` until the first grant lands).
    pub coordinator: Option<String>,
    /// Stable shard identity to present when (re-)leasing, so a restarted
    /// shard is re-adopted instead of double-granted. `None` lets the
    /// coordinator assign one.
    pub shard_id: Option<u64>,
    /// Degraded-mode floor, W: the cap a partitioned shard decays toward
    /// and the pre-lease reserve it runs at before its first grant.
    pub lease_floor_w: f64,
    /// Lease renewal interval, ms.
    pub renew_ms: u64,
    /// Brownout target: the p99 service latency, µs, the server tries to
    /// hold by progressively disabling optional work (level 1 skips
    /// adaptation feedback, 2 strips STATS detail, 3 serializes batch
    /// fan-out and sheds deadline-carrying requests the latency estimate
    /// says would expire before service). `0` (the default) disables the
    /// controller entirely — no thread, no level, the pre-brownout byte
    /// path. Requests without a deadline are never shed at any level.
    pub brownout_us: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            host: "127.0.0.1".into(),
            port: 0,
            seed: 2014,
            family: FamilyId::Trinity,
            global_cap_w: 120.0,
            policy: ArbiterPolicy::EqualShare,
            max_sessions: 8,
            max_batch: 256,
            timeline_capacity: 4096,
            journal: None,
            journal_sync: false,
            coordinator: None,
            shard_id: None,
            lease_floor_w: 5.0,
            renew_ms: 200,
            brownout_us: 0,
        }
    }
}

/// Typed server failures.
#[derive(Debug)]
pub enum ServeError {
    /// The listener could not bind (EADDRINUSE, bad interface, ...).
    Bind {
        /// The address that was requested.
        addr: String,
        /// OS-level detail.
        detail: String,
    },
    /// Listener failure after binding.
    Io(String),
    /// The recovery journal could not be opened or replayed.
    Journal(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Bind { addr, detail } => {
                write!(f, "cannot bind {addr}: {detail}")
            }
            ServeError::Io(m) => write!(f, "listener failure: {m}"),
            ServeError::Journal(m) => write!(f, "recovery journal: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// State shared by the accept loop and every session.
struct Shared {
    config: ServeConfig,
    model: Arc<TrainedModel>,
    engine: Engine,
    arbiter: Mutex<Arbiter>,
    metrics: Metrics,
    shutdown: AtomicBool,
    /// Crash simulation (tests, `bench_recovery`): sessions stop without
    /// journaling `Leave`, exactly like a SIGKILL mid-conversation.
    crashed: AtomicBool,
    active: AtomicUsize,
    next_node: AtomicU64,
    journal: Option<Arc<Journal>>,
    recovery: Option<Recovery>,
    /// The shard-side lease state machine; `Some` iff a coordinator is
    /// configured. The lease client thread mutates it; `Stats` reads it.
    lease: Option<Mutex<ShardLease>>,
    /// Current brownout level (0 = everything enabled). Written by the
    /// brownout thread, read on every request; stays 0 forever when the
    /// controller is disabled.
    brownout_level: AtomicU8,
    /// The brownout thread's cached p99 service-latency estimate, µs —
    /// what the shed decision compares deadlines against (sessions must
    /// not pay a reservoir scan per request).
    est_p99_us: AtomicU64,
    /// Times the lease client learned its lease was evicted by the
    /// coordinator's health check (`unknown-lease` on renew).
    evicted_observed: AtomicU64,
    /// Per-session online adaptation state, keyed by node id. A clean
    /// `Bye` removes the entry; a crash leaves it, mirroring the journal's
    /// replay semantics (orphans keep their rebuilt state).
    adapt: Mutex<BTreeMap<u64, AdaptivePredictor>>,
}

/// Best-effort journal append. Append failures (disk full, journal file
/// deleted under us) degrade durability, not availability: the server
/// keeps serving, and the next restart simply recovers less.
fn journal_append(shared: &Shared, entry: &JournalEntry) {
    if let Some(journal) = &shared.journal {
        let _ = journal.append(entry);
    }
}

/// A cheap handle for observing and stopping a running server.
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Request shutdown; the accept loop and sessions drain within their
    /// next poll interval.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Wire-protocol failures observed so far.
    pub fn protocol_errors(&self) -> u64 {
        self.shared.metrics.protocol_errors()
    }

    /// Sessions currently connected.
    pub fn active_sessions(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// `Run` requests answered from the idempotency memo so far.
    pub fn idem_replays(&self) -> u64 {
        self.shared.metrics.idem_replays()
    }

    /// The arbiter's current epoch.
    pub fn arbiter_epoch(&self) -> u64 {
        self.shared.arbiter.lock().epoch()
    }

    /// `|global cap − Σ budgets|`, which the arbiter keeps at exactly zero
    /// (the chaos tests assert this after every injected disconnect).
    pub fn budget_conservation_error_w(&self) -> f64 {
        self.shared.arbiter.lock().conservation_error_w()
    }

    /// What journal replay reconstructed at bind time, if a journal was
    /// configured.
    pub fn recovery(&self) -> Option<Recovery> {
        self.shared.recovery.clone()
    }

    /// The shard's lease state name (`standalone` when no coordinator is
    /// configured).
    pub fn lease_state(&self) -> String {
        match &self.shared.lease {
            Some(lease) => lease.lock().state().name().to_string(),
            None => "standalone".to_string(),
        }
    }

    /// The cap the shard currently enforces: its lease budget, or the
    /// configured global cap when standalone.
    pub fn lease_cap_w(&self) -> f64 {
        match &self.shared.lease {
            Some(lease) => lease.lock().cap_w(),
            None => self.shared.config.global_cap_w,
        }
    }

    /// Times the shard has entered degraded mode.
    pub fn degraded_entries(&self) -> u64 {
        self.shared.lease.as_ref().map(|l| l.lock().degraded_entries()).unwrap_or(0)
    }

    /// Successful lease renewals against the coordinator.
    pub fn lease_renews(&self) -> u64 {
        self.shared.metrics.lease_renews()
    }

    /// Per-session adaptation-state digests, sorted by node id. The
    /// kill-and-restart e2e compares these against the digests of the
    /// predictors journal replay rebuilds.
    pub fn adapt_digests(&self) -> Vec<(u64, u64)> {
        self.shared
            .adapt
            .lock()
            .iter()
            .map(|(node_id, predictor)| (*node_id, predictor.state_digest()))
            .collect()
    }

    /// Measured-feedback observations consumed by adaptive predictors.
    pub fn adapt_observations(&self) -> u64 {
        self.shared.metrics.adapt_observations()
    }

    /// Requests shed by the deadline gate so far.
    pub fn sheds(&self) -> u64 {
        self.shared.metrics.sheds()
    }

    /// Served requests that exceeded their own deadline in service.
    pub fn deadline_misses(&self) -> u64 {
        self.shared.metrics.deadline_misses()
    }

    /// The current brownout level (0 when the controller is disabled).
    pub fn brownout_level(&self) -> u8 {
        self.shared.brownout_level.load(Ordering::SeqCst)
    }

    /// Times this shard observed its lease evicted by the coordinator's
    /// health check.
    pub fn evictions_observed(&self) -> u64 {
        self.shared.evicted_observed.load(Ordering::SeqCst)
    }

    /// Die like a SIGKILL: stop every session *without* journaling their
    /// `Leave` entries, so the journal ends exactly as a crashed process
    /// would leave it. In-process stand-in for the out-of-process kill in
    /// `bench_recovery` (tests cannot SIGKILL themselves).
    pub fn simulate_crash(&self) {
        self.shared.crashed.store(true, Ordering::SeqCst);
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }
}

/// SIGINT plumbing: the handler only sets a flag the accept loop polls.
/// `pub(crate)` so the chaos proxy's accept loop shares the same flag.
#[cfg(unix)]
pub(crate) mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static SIGINT: AtomicBool = AtomicBool::new(false);
    const SIGINT_NO: i32 = 2;

    extern "C" fn on_sigint(_: i32) {
        SIGINT.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        unsafe {
            signal(SIGINT_NO, on_sigint);
        }
    }

    pub fn pending() -> bool {
        SIGINT.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
pub(crate) mod sig {
    pub fn install() {}
    pub fn pending() -> bool {
        false
    }
}

/// A bound, not-yet-running selection server.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the configured address. `port: 0` binds an ephemeral port —
    /// read it back with [`local_addr`](Self::local_addr). Bind failures
    /// (EADDRINUSE and friends) come back as [`ServeError::Bind`], never
    /// a panic.
    pub fn bind(config: ServeConfig, model: TrainedModel) -> Result<Self, ServeError> {
        let requested = format!("{}:{}", config.host, config.port);
        let listener = TcpListener::bind(&requested)
            .map_err(|e| ServeError::Bind { addr: requested.clone(), detail: e.to_string() })?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Bind { addr: requested, detail: e.to_string() })?;
        listener.set_nonblocking(true).map_err(|e| ServeError::Io(e.to_string()))?;
        let model = Arc::new(model);

        // Crash recovery: open the journal, replay its valid prefix into a
        // fresh arbiter (orphaned sessions removed, next node id resumed),
        // and re-warm the profile cache with the journaled miss keys. The
        // miss hook is installed only *after* warm-up, so replayed keys are
        // not journaled a second time.
        let (journal, recovery, mut arbiter, next_node) = match &config.journal {
            Some(path) => {
                let (journal, entries) = Journal::open_with_sync(path, config.journal_sync)
                    .map_err(|e| ServeError::Journal(e.to_string()))?;
                let (arbiter, recovery) = replay(&entries, config.global_cap_w, config.policy)
                    .map_err(|e| ServeError::Journal(e.to_string()))?;
                let next_node = recovery.next_node;
                (Some(Arc::new(journal)), Some(recovery), arbiter, next_node)
            }
            None => (None, None, Arbiter::new(config.global_cap_w, config.policy), 1),
        };
        // A coordinator-bound shard must not exceed its pre-lease reserve
        // (the floor) until its first grant lands, whatever cap the journal
        // replayed — the coordinator only encumbers the floor for a silent
        // shard, so anything above it would break fleet conservation.
        let lease = if config.coordinator.is_some() {
            let shard = ShardLease::new(config.lease_floor_w);
            arbiter.set_global_cap(shard.cap_w());
            if let Some(journal) = &journal {
                let _ = journal.append(&JournalEntry::Cap {
                    cap_w: arbiter.global_cap_w(),
                    epoch: arbiter.epoch(),
                });
            }
            Some(Mutex::new(shard))
        } else {
            None
        };
        let engine =
            Engine::new(Arc::clone(&model), Machine::from_family(config.family, config.seed));
        if let Some(recovery) = &recovery {
            for kernel_id in &recovery.warm_kernels {
                let _ = engine.profile(kernel_id);
            }
        }
        if let Some(journal) = &journal {
            let sink = Arc::clone(journal);
            engine.set_miss_hook(Box::new(move |kernel_id| {
                let _ = sink.append(&JournalEntry::CacheKey { kernel_id: kernel_id.to_string() });
            }));
        }

        // Reconcile the STATS degradation-rung tallies with replayed
        // history: a restarted server reports the rungs it already served,
        // not a fresh zero next to a warm cache.
        let metrics = Metrics::new();
        if let Some(recovery) = &recovery {
            metrics.seed_rungs(&recovery.rung_tallies);
        }
        let shared = Arc::new(Shared {
            engine,
            arbiter: Mutex::new(arbiter),
            metrics,
            shutdown: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            next_node: AtomicU64::new(next_node),
            journal,
            recovery,
            lease,
            brownout_level: AtomicU8::new(0),
            est_p99_us: AtomicU64::new(0),
            evicted_observed: AtomicU64::new(0),
            adapt: Mutex::new(BTreeMap::new()),
            model,
            config,
        });
        Ok(Self { listener, addr, shared })
    }

    /// The address actually bound (resolves `--port 0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle usable from other threads while [`run`](Self::run) blocks.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// Serve until SIGINT or a `Shutdown` poison request, then drain and
    /// join every session.
    pub fn run(self) -> Result<(), ServeError> {
        sig::install();
        let lease_thread = self.shared.config.coordinator.clone().map(|target| {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || run_lease_client(shared, target))
        });
        let brownout_thread = (self.shared.config.brownout_us > 0).then(|| {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || run_brownout(shared))
        });
        let mut sessions: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if sig::pending() {
                self.shared.shutdown.store(true, Ordering::SeqCst);
            }
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let active = self.shared.active.load(Ordering::SeqCst);
                    if active >= self.shared.config.max_sessions {
                        self.shared.metrics.record_overloaded();
                        let mut stream = stream;
                        let _ = write_frame(
                            &mut stream,
                            &Response::Overloaded {
                                load: active as u64 + 1,
                                limit: self.shared.config.max_sessions as u64,
                            },
                        );
                        continue;
                    }
                    self.shared.active.fetch_add(1, Ordering::SeqCst);
                    let node_id = self.shared.next_node.fetch_add(1, Ordering::SeqCst);
                    let shared = Arc::clone(&self.shared);
                    sessions.push(std::thread::spawn(move || {
                        run_session(shared, stream, node_id);
                    }));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(ServeError::Io(e.to_string())),
            }
        }
        for handle in sessions {
            let _ = handle.join();
        }
        if let Some(handle) = lease_thread {
            let _ = handle.join();
        }
        if let Some(handle) = brownout_thread {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// How often the brownout controller re-reads the latency reservoir.
const BROWNOUT_POLL: Duration = Duration::from_millis(100);

/// Map an observed p99 to a brownout level against the configured target:
/// within target → 0, within 2× → 1, within 4× → 2, beyond → 3. Pure, so
/// the ladder is unit-testable without a server.
pub fn brownout_level_for(target_us: u64, p99_us: u64) -> u8 {
    if p99_us <= target_us {
        0
    } else if p99_us <= target_us.saturating_mul(2) {
        1
    } else if p99_us <= target_us.saturating_mul(4) {
        2
    } else {
        3
    }
}

/// The brownout controller: one thread, one reservoir read per poll.
/// Level transitions are journaled (pure observability — replay counts
/// them, the live level always restarts at 0) and published through the
/// shared atomics the request path reads.
fn run_brownout(shared: Arc<Shared>) {
    let target_us = shared.config.brownout_us;
    while !shared.shutdown.load(Ordering::SeqCst) {
        let p99_us = shared.metrics.p99_latency_us_now();
        shared.est_p99_us.store(p99_us, Ordering::SeqCst);
        let level = brownout_level_for(target_us, p99_us);
        let previous = shared.brownout_level.swap(level, Ordering::SeqCst);
        if level != previous {
            journal_append(&shared, &JournalEntry::Brownout { level });
        }
        std::thread::sleep(BROWNOUT_POLL);
    }
}

/// The priority a deadline-carrying request must meet to be served, as a
/// `u16` so 256 means "shed regardless of priority". A zero deadline has
/// already expired before service. At full brownout (level 3) requests
/// whose deadline the current p99 estimate says cannot be met are shed
/// unless they carry high priority (≥ 128). Below level 3 nothing with a
/// positive deadline is shed — brownout dims optional work first.
pub fn required_priority(brownout_level: u8, deadline_ms: u64, est_p99_us: u64) -> u16 {
    if deadline_ms == 0 {
        return 256;
    }
    if brownout_level >= 3 && est_p99_us > deadline_ms.saturating_mul(1000) {
        return 128;
    }
    0
}

/// Whether to shed a request. Monotone in `priority` for any fixed
/// `(brownout_level, deadline_ms, est_p99_us)` — the property the
/// shedding proptest pins down: no request is shed while a lower-priority
/// request with the same deadline is served.
pub fn should_shed(brownout_level: u8, deadline_ms: u64, priority: u8, est_p99_us: u64) -> bool {
    u16::from(priority) < required_priority(brownout_level, deadline_ms, est_p99_us)
}

/// The shard's lease client: one thread, one renewal per `renew_ms`.
///
/// Each round sends `Renew` (or `Lease` when unleased) and folds the
/// outcome into the [`ShardLease`] state machine; the resulting cap is
/// applied to the arbiter and journaled as a [`JournalEntry::Cap`] so a
/// restarted shard replays to the same budgets. Connection failures and
/// timeouts are *misses* (degraded-mode decay), and when the shard's own
/// clock says the lease TTL has passed without contact, the cap clamps to
/// the coordinator's encumbered reserve — `min(floor, last grant)` — so a
/// fully partitioned fleet still sums below the global cap.
fn run_lease_client(shared: Arc<Shared>, target: String) {
    let lease_mutex = shared.lease.as_ref().expect("lease client requires lease state");
    let renew_every = Duration::from_millis(shared.config.renew_ms.max(10));
    let mut client: Option<CoordClient> = None;
    // (instant of last successful contact, lease TTL) — shard-local expiry.
    let mut contact: Option<(Instant, Duration)> = None;
    'rounds: loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let started = Instant::now();
        let request = {
            let lease = lease_mutex.lock();
            match lease.lease_id() {
                Some(lease_id) => CoordRequest::Renew {
                    lease_id,
                    epoch: lease.epoch(),
                    demand_w: shared.config.global_cap_w,
                },
                None => CoordRequest::Lease {
                    shard_id: shared.config.shard_id.or(lease.shard_id()),
                    demand_w: shared.config.global_cap_w,
                },
            }
        };
        let response = lease_call(&mut client, &target, renew_every, &request);
        let latency_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let cap_w = {
            let mut lease = lease_mutex.lock();
            match response {
                Ok(CoordResponse::Granted {
                    lease_id, shard_id, epoch, budget_w, ttl_ms, ..
                }) => {
                    contact = Some((Instant::now(), Duration::from_millis(ttl_ms)));
                    shared.metrics.record_renew(latency_ns);
                    lease.on_granted(lease_id, shard_id, epoch, budget_w)
                }
                Ok(CoordResponse::Renewed { epoch, budget_w, .. }) => {
                    if let Some((at, _)) = &mut contact {
                        *at = Instant::now();
                    }
                    shared.metrics.record_renew(latency_ns);
                    lease.on_renewed(epoch, budget_w)
                }
                Ok(CoordResponse::Rejected { code, .. }) => {
                    match code.as_str() {
                        // The lease is gone on the coordinator's side:
                        // clamp to the floor and re-lease next round with
                        // the remembered shard id (re-adoption, not a
                        // double grant). `unknown-lease` on a renew means
                        // the health check evicted us — count it so STATS
                        // and the chaos orchestrator can see failovers.
                        "expired" | "fenced" | "unknown-lease" => {
                            if code == "unknown-lease"
                                && matches!(request, CoordRequest::Renew { .. })
                            {
                                shared.evicted_observed.fetch_add(1, Ordering::SeqCst);
                            }
                            contact = None;
                            lease.on_released();
                        }
                        // "denied" and anything else: stay unleased at the
                        // floor and keep asking.
                        _ => {}
                    }
                    lease.cap_w()
                }
                Ok(_) => lease.cap_w(),
                Err(_) => {
                    client = None;
                    let mut cap_w = lease.on_miss();
                    if let Some((at, ttl)) = contact {
                        if at.elapsed() >= ttl {
                            cap_w = lease.on_expired();
                            contact = None;
                        }
                    }
                    cap_w
                }
            }
        };
        apply_lease_cap(&shared, cap_w);
        let deadline = started + renew_every;
        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            if shared.shutdown.load(Ordering::SeqCst) {
                break 'rounds;
            }
            std::thread::sleep(ACCEPT_POLL.min(deadline - now));
        }
    }
    // Clean shutdown releases the lease so the coordinator frees the full
    // encumbrance immediately; a simulated crash must not (the journal and
    // the coordinator should both see a SIGKILL-shaped ending).
    if !shared.crashed.load(Ordering::SeqCst) {
        let lease_id = lease_mutex.lock().lease_id();
        if let Some(lease_id) = lease_id {
            let _ =
                lease_call(&mut client, &target, renew_every, &CoordRequest::Release { lease_id });
        }
    }
}

/// One lease-protocol round trip, (re)connecting as needed. The caller
/// resets `client` on error so the next round reconnects.
fn lease_call(
    client: &mut Option<CoordClient>,
    target: &str,
    timeout: Duration,
    request: &CoordRequest,
) -> Result<CoordResponse, ProtocolError> {
    if client.is_none() {
        let addr = target.to_socket_addrs()?.next().ok_or_else(|| {
            ProtocolError::Io(std::io::Error::new(
                ErrorKind::AddrNotAvailable,
                format!("coordinator address {target} resolved to nothing"),
            ))
        })?;
        *client = Some(CoordClient::connect_timeout(&addr, timeout)?);
    }
    let result = client.as_mut().expect("connected above").call(request);
    if result.is_err() {
        *client = None;
    }
    result
}

/// Apply a lease-derived cap to the shard's arbiter. The mutation and its
/// journal entry happen under the arbiter lock so the recorded epoch is
/// exactly the one this cap change produced.
fn apply_lease_cap(shared: &Shared, cap_w: f64) {
    let mut arbiter = shared.arbiter.lock();
    if (arbiter.global_cap_w() - cap_w).abs() <= 1e-9 {
        return;
    }
    arbiter.set_global_cap(cap_w);
    journal_append(
        shared,
        &JournalEntry::Cap { cap_w: arbiter.global_cap_w(), epoch: arbiter.epoch() },
    );
}

/// One connection: a node in the arbiter's cluster with its own capped,
/// guarded runtime over its own (seed-identical) simulated machine.
fn run_session(shared: Arc<Shared>, mut stream: TcpStream, node_id: u64) {
    let _ = stream.set_read_timeout(Some(SESSION_READ_TIMEOUT));
    let _ = stream.set_nodelay(true);

    // (mutation, epoch) pairs are journaled under the arbiter lock so the
    // recorded epoch is exactly the one this operation produced.
    let budget_w = {
        let mut arbiter = shared.arbiter.lock();
        let budget_w = arbiter.join(node_id);
        journal_append(&shared, &JournalEntry::Admit { node_id, epoch: arbiter.epoch() });
        budget_w
    };
    shared.adapt.lock().insert(node_id, AdaptivePredictor::default());
    let mut rt = CappedRuntime::guarded(
        Machine::from_family(shared.config.family, shared.config.seed),
        (*shared.model).clone(),
        budget_w,
        GuardPolicy::default(),
    );
    rt.timeline().set_capacity(Some(shared.config.timeline_capacity));
    let mut seen_epoch = shared.arbiter.lock().epoch();

    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        // Pick up budget reshuffles made on behalf of *other* nodes; a
        // changed budget re-runs selection from the cached frontiers.
        {
            let arbiter = shared.arbiter.lock();
            let epoch = arbiter.epoch();
            if epoch != seen_epoch {
                seen_epoch = epoch;
                let budget = arbiter.budget_of(node_id);
                drop(arbiter);
                if let Some(budget) = budget {
                    apply_budget(&shared, &mut rt, budget);
                }
            }
        }

        let request = match read_frame::<_, Request>(&mut stream) {
            Ok(ReadOutcome::Frame(req)) => req,
            Ok(ReadOutcome::Idle) => continue,
            Ok(ReadOutcome::Eof) => break,
            Err(err) => {
                shared.metrics.record_protocol_error();
                let _ = write_frame(
                    &mut stream,
                    &Response::Error { code: err.code().into(), detail: err.to_string() },
                );
                break;
            }
        };

        let started = Instant::now();
        let kind = request.kind();
        let deadline = request.deadline();
        let (response, done) = handle_request(&shared, &mut rt, node_id, request);
        let latency_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        shared.metrics.record_request(kind, latency_ns);
        // A served (not shed) request that blew through its own deadline
        // is a miss — the overload bench's goodput denominator.
        if let Some((deadline_ms, _)) = deadline {
            if !matches!(response, Response::ShedDeadline { .. })
                && latency_ns > deadline_ms.saturating_mul(1_000_000)
            {
                shared.metrics.record_deadline_miss();
            }
        }
        if write_frame(&mut stream, &response).is_err() {
            break;
        }
        if done {
            break;
        }
    }

    // A simulated crash skips the clean leave: the journal must end the way
    // a SIGKILLed process leaves it, with this session still admitted (the
    // restarted server's replay then removes it as an orphan).
    if !shared.crashed.load(Ordering::SeqCst) {
        let mut arbiter = shared.arbiter.lock();
        arbiter.leave(node_id);
        journal_append(&shared, &JournalEntry::Leave { node_id, epoch: arbiter.epoch() });
        drop(arbiter);
        // A clean close discards the session's adaptation state, exactly
        // as replaying its Leave entry does; a crash leaves it in place.
        shared.adapt.lock().remove(&node_id);
    }
    shared.active.fetch_sub(1, Ordering::SeqCst);
}

/// Apply an arbiter-assigned budget to the session runtime, re-running
/// selection for every classified kernel.
fn apply_budget(shared: &Shared, rt: &mut CappedRuntime<Machine>, budget_w: f64) {
    if (rt.cap_w() - budget_w).abs() > 1e-9 && rt.try_set_cap(budget_w).is_ok() {
        shared.metrics.record_reselection();
    }
}

/// Serve one request. Returns the response and whether the session ends.
fn handle_request(
    shared: &Shared,
    rt: &mut CappedRuntime<Machine>,
    node_id: u64,
    request: Request,
) -> (Response, bool) {
    let brownout_level = shared.brownout_level.load(Ordering::SeqCst);
    // The shed gate runs before any work: a request that has already
    // expired (or that the brownout estimate says will) is answered with
    // one typed frame and costs nothing else. Requests without a deadline
    // never enter the gate.
    if let Some((deadline_ms, priority)) = request.deadline() {
        let est_p99_us = shared.est_p99_us.load(Ordering::SeqCst);
        if should_shed(brownout_level, deadline_ms, priority, est_p99_us) {
            shared.metrics.record_shed();
            return (Response::ShedDeadline { deadline_ms, priority, brownout_level }, false);
        }
    }
    match request {
        Request::Hello => (Response::Welcome { node_id, budget_w: rt.cap_w() }, false),
        Request::Select { kernel_id, .. } => {
            match select_for(shared, node_id, &kernel_id, rt.cap_w()) {
                Ok(selection) => (Response::Selected(selection), false),
                Err(e) => (engine_error(e), false),
            }
        }
        Request::Batch { kernel_ids, .. } => {
            let limit = shared.config.max_batch;
            if kernel_ids.len() > limit {
                shared.metrics.record_overloaded();
                return (
                    Response::Overloaded { load: kernel_ids.len() as u64, limit: limit as u64 },
                    false,
                );
            }
            // Sessions with no confirmed drift correction for any batched
            // kernel take the parallel static path, bit-identical to the
            // pre-adaptation server. Brownout level 3 also forces the
            // sequential walk: selections stay byte-identical, only the
            // fan-out's thread-pool pressure is dropped.
            let any_corrected = {
                let adapt = shared.adapt.lock();
                adapt
                    .get(&node_id)
                    .is_some_and(|p| kernel_ids.iter().any(|k| p.correction(k).is_some()))
            };
            let mut selections = Vec::with_capacity(kernel_ids.len());
            if any_corrected || brownout_level >= 3 {
                for kernel_id in &kernel_ids {
                    match select_for(shared, node_id, kernel_id, rt.cap_w()) {
                        Ok(s) => selections.push(s),
                        Err(e) => return (engine_error(e), false),
                    }
                }
            } else {
                for result in shared.engine.select_batch(&kernel_ids, rt.cap_w()) {
                    match result {
                        Ok(s) => selections.push(s),
                        Err(e) => return (engine_error(e), false),
                    }
                }
            }
            (Response::BatchSelected { selections }, false)
        }
        Request::Run { kernel_id, iterations, idem, .. } => {
            // A retry carrying a known idempotency key replays the first
            // successful execution's exact response instead of running the
            // kernel again (exactly-once in effect).
            if let Some(key) = idem {
                if let Some(memo) = shared.engine.idem_lookup(key) {
                    shared.metrics.record_idem_replay();
                    return (memo, false);
                }
            }
            let Some(kernel) = shared.engine.kernel(&kernel_id).cloned() else {
                return (engine_error(EngineError::UnknownKernel(kernel_id)), false);
            };
            let iterations = iterations.max(1);
            let mut total_time_s = 0.0;
            let mut power_sum = 0.0;
            let mut last_config = None;
            for _ in 0..iterations {
                match rt.run_kernel(&kernel) {
                    Ok(run) => {
                        total_time_s += run.time_s;
                        power_sum += run.power_w();
                        last_config = Some(run.config);
                    }
                    Err(e) => {
                        return (
                            Response::Error { code: "runtime".into(), detail: e.to_string() },
                            false,
                        )
                    }
                }
            }
            let tier = rt
                .health(&kernel_id)
                .map(|h| h.tier.label())
                .unwrap_or_else(|| "model".to_string());
            shared.metrics.record_rung(&tier);
            // Rung tallies are journaled so recovery replay reconciles the
            // STATS degradation history instead of restarting it at zero.
            journal_append(shared, &JournalEntry::Rung { label: tier.clone() });
            let response = Response::Ran {
                kernel_id,
                iterations,
                avg_power_w: power_sum / iterations as f64,
                total_time_s,
                config: last_config.expect("at least one iteration ran"),
                tier,
            };
            // Only successful executions are memoized: a retried failure
            // should re-execute, not replay the error.
            if let Some(key) = idem {
                shared.engine.idem_store(key, &response);
            }
            (response, false)
        }
        Request::Report { residual_w, feedback } => {
            // Feedback is validated and consumed *before* the arbiter
            // mutates: a rejected measurement must leave the session's
            // budget exactly as it was. Brownout level 1 drops feedback
            // processing entirely — adaptation is the first optional work
            // to go, the budget report itself still lands.
            if brownout_level < 1 {
                if let Some(feedback) = feedback {
                    if let Err(response) = observe_feedback(shared, node_id, &feedback) {
                        return (*response, false);
                    }
                }
            }
            let budget = {
                let mut arbiter = shared.arbiter.lock();
                let budget = arbiter.report(node_id, residual_w);
                journal_append(
                    shared,
                    &JournalEntry::Report { node_id, residual_w, epoch: arbiter.epoch() },
                );
                budget
            };
            // Apply our own new budget immediately; other sessions pick
            // the reshuffle up at their next poll via the epoch counter.
            let budget_w = budget.unwrap_or_else(|| rt.cap_w());
            apply_budget(shared, rt, budget_w);
            (Response::Budget { budget_w: rt.cap_w() }, false)
        }
        Request::Stats => {
            let mut snapshot = shared.metrics.snapshot(
                shared.engine.cache_counts(),
                shared.active.load(Ordering::SeqCst) as u64,
                shared.arbiter.lock().rebalances(),
                &lease_report(shared),
            );
            // Brownout level 2 strips the detail maps: the headline
            // counters (and the brownout level itself) still flow, but
            // the per-kind and per-rung breakdowns are optional work.
            if brownout_level >= 2 {
                snapshot.requests_by_kind.clear();
                snapshot.degradation_tallies.clear();
            }
            (Response::Stats(Box::new(snapshot)), false)
        }
        Request::Bye => (Response::Bye, true),
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            (Response::ShuttingDown, true)
        }
    }
}

/// Select for one kernel through the session's adaptive predictor. With no
/// confirmed drift correction this is exactly [`Engine::select`] — the
/// bit-identical static path. With one, the frontier is re-walked under
/// the drift-deflated cap and the advertised predictions carry the
/// estimated correction.
fn select_for(
    shared: &Shared,
    node_id: u64,
    kernel_id: &str,
    cap_w: f64,
) -> Result<Selection, EngineError> {
    let correction = shared.adapt.lock().get(&node_id).and_then(|p| p.correction(kernel_id));
    let Some(correction) = correction else {
        return shared.engine.select(kernel_id, cap_w);
    };
    let profile = shared.engine.profile(kernel_id)?;
    let selection = {
        let adapt = shared.adapt.lock();
        // The predictor only mutates from this session's own thread, so it
        // is still present and still corrected here.
        adapt
            .get(&node_id)
            .expect("correction implies a predictor")
            .selection(kernel_id, &profile, cap_w)
    };
    if selection.corrected {
        shared.metrics.record_adapt_reselection();
    }
    let point = profile.point_for(&selection.config);
    Ok(Selection {
        kernel_id: kernel_id.to_string(),
        cluster: profile.cluster,
        config: selection.config,
        predicted_power_w: point.power_w * correction.power_ratio,
        predicted_perf: point.perf * correction.perf_ratio,
        budget_w: cap_w,
    })
}

/// Feed one `Report` feedback payload through the session's predictor:
/// validate, observe, journal the exact clamped ratio bits (plus any
/// cluster-mismatch reclassification), and count the drift events. On
/// error the predictor is untouched and the caller returns the typed
/// response without touching the arbiter.
fn observe_feedback(
    shared: &Shared,
    node_id: u64,
    feedback: &ReportFeedback,
) -> Result<(), Box<Response>> {
    // A hostile config (out-of-range threads or P-states) would index
    // outside the profile's point table; reject it before the lookup.
    let index = feedback.config.index();
    if Configuration::all().get(index) != Some(&feedback.config) {
        return Err(Box::new(Response::Error {
            code: "bad-feedback".into(),
            detail: format!("configuration {:?} is not in the machine's space", feedback.config),
        }));
    }
    let profile = match shared.engine.profile(&feedback.kernel_id) {
        Ok(profile) => profile,
        Err(e) => return Err(Box::new(engine_error(e))),
    };
    let point = profile.point_for(&feedback.config);
    let (predicted_power_w, predicted_perf) = (point.power_w, point.perf);
    let mut adapt = shared.adapt.lock();
    let predictor = adapt.entry(node_id).or_default();
    match predictor.observe(
        &feedback.kernel_id,
        feedback.measured_power_w,
        feedback.measured_perf,
        predicted_power_w,
        predicted_perf,
    ) {
        Ok(outcome) => {
            let mismatches = outcome
                .events
                .iter()
                .filter(|e| matches!(e, DriftEvent::ClusterMismatch { .. }))
                .count() as u64;
            shared.metrics.record_adapt_observation(outcome.events.len() as u64, mismatches);
            journal_append(
                shared,
                &JournalEntry::AdaptObs {
                    node_id,
                    kernel_id: feedback.kernel_id.clone(),
                    power_bits: outcome.power_ratio.to_bits(),
                    perf_bits: outcome.perf_ratio.to_bits(),
                },
            );
            for event in &outcome.events {
                if let DriftEvent::ClusterMismatch { kernel_id, .. } = event {
                    journal_append(
                        shared,
                        &JournalEntry::Reclassify { node_id, kernel_id: kernel_id.clone() },
                    );
                }
            }
            Ok(())
        }
        Err(e) => {
            Err(Box::new(Response::Error { code: "bad-feedback".into(), detail: e.to_string() }))
        }
    }
}

/// Assemble the lease/journal side of a `Stats` snapshot.
fn lease_report(shared: &Shared) -> LeaseReport {
    let (lease_state, lease_budget_w, degraded_entries) = match &shared.lease {
        Some(lease) => {
            let lease = lease.lock();
            (lease.state().name().to_string(), lease.cap_w(), lease.degraded_entries())
        }
        None => ("standalone".to_string(), shared.config.global_cap_w, 0),
    };
    LeaseReport {
        lease_state,
        lease_budget_w,
        degraded_entries,
        journal_appends: shared.journal.as_ref().map(|j| j.appended_entries()).unwrap_or(0),
        journal_replayed: shared.recovery.as_ref().map(|r| r.replayed).unwrap_or(0),
        brownout_level: shared.brownout_level.load(Ordering::SeqCst),
        evicted_shards: shared.evicted_observed.load(Ordering::SeqCst),
    }
}

fn engine_error(e: EngineError) -> Response {
    let code = match &e {
        EngineError::UnknownKernel(_) => "unknown-kernel",
    };
    Response::Error { code: code.into(), detail: e.to_string() }
}

/// A blocking client for the wire protocol (used by `acs loadgen`, the
/// benches, and the tests).
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: &str) -> Result<Self, ProtocolError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Send one request and wait for its response.
    pub fn call(&mut self, request: &Request) -> Result<Response, ProtocolError> {
        write_frame(&mut self.stream, request)?;
        match read_frame(&mut self.stream)? {
            ReadOutcome::Frame(resp) => Ok(resp),
            ReadOutcome::Eof | ReadOutcome::Idle => Err(ProtocolError::Io(std::io::Error::new(
                ErrorKind::UnexpectedEof,
                "server closed mid-call",
            ))),
        }
    }

    /// The raw stream (for tests that need to write hostile bytes).
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}
