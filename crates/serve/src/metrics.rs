//! Server metrics: counters, latency quantiles, and the `STATS` snapshot.
//!
//! Latencies are recorded in **nanoseconds** into a bounded reservoir (the
//! server is long-running; an unbounded sample vector would be the same
//! bug the Timeline ring buffer exists to prevent). Snapshots report
//! microseconds, rounding each quantile *up* — warm selects service in
//! well under a microsecond, so truncating division would report the
//! median of a busy server as 0 µs (the PR-8 reservoir bug). Quantiles are
//! computed on demand by sorting a copy — snapshots are rare relative to
//! requests.
//!
//! Snapshots carry wall-clock-derived latency numbers, so replay logs
//! exclude `Stats` responses (DESIGN.md §11); everything else in the
//! snapshot is a plain counter.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Cap on retained latency samples. Beyond it, recording falls back to
/// overwriting a rotating slot, which keeps quantiles fresh without growth.
const LATENCY_RESERVOIR: usize = 1 << 16;

/// Point-in-time server statistics, as returned for a `Stats` request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Requests served, all kinds.
    pub requests_total: u64,
    /// Per-kind request counts (`select`, `batch`, `run`, ...).
    pub requests_by_kind: BTreeMap<String, u64>,
    /// Median request service latency, µs (rounded up from nanosecond
    /// samples: any recorded request reports at least 1 µs).
    pub p50_latency_us: u64,
    /// 99th-percentile request service latency, µs (rounded up).
    pub p99_latency_us: u64,
    /// Profile-cache hits since startup.
    pub cache_hits: u64,
    /// Profile-cache misses since startup.
    pub cache_misses: u64,
    /// `hits / (hits + misses)`, 0 when nothing was looked up.
    pub cache_hit_rate: f64,
    /// Sessions currently connected.
    pub active_sessions: u64,
    /// Arbiter rebalances that changed at least one budget.
    pub arbiter_rebalances: u64,
    /// Budget reshuffles that made a session re-run selection.
    pub reselections: u64,
    /// Connections or batches refused with a typed `Overloaded`.
    pub overloaded: u64,
    /// `Run` requests answered from the idempotency memo (a retry with a
    /// known key) instead of executing again.
    pub idem_replays: u64,
    /// Frames that failed to parse (truncated, oversized, bad UTF-8, ...).
    pub protocol_errors: u64,
    /// Requests served per degradation-ladder rung label (PR-1 ladder:
    /// `model`, `model+fl(1)`, ..., `safe-min`).
    pub degradation_tallies: BTreeMap<String, u64>,
    /// Shard lease state: `standalone` (no coordinator configured),
    /// `unleased`, `leased`, or `degraded`.
    pub lease_state: String,
    /// The cap the shard currently enforces (its lease budget, or the
    /// configured global cap when standalone).
    pub lease_budget_w: f64,
    /// Times the shard has *entered* degraded mode (missed-renewal decay).
    pub degraded_entries: u64,
    /// Successful lease renewals against the coordinator.
    pub lease_renews: u64,
    /// Median renew round-trip latency, µs (0 when standalone).
    pub p50_renew_latency_us: u64,
    /// 99th-percentile renew round-trip latency, µs.
    pub p99_renew_latency_us: u64,
    /// Entries appended to the recovery journal by *this* process.
    pub journal_appends: u64,
    /// Entries replayed from the journal at startup.
    pub journal_replayed: u64,
    /// Measured-feedback observations consumed by per-session adaptive
    /// predictors (both live Reports and journal replay).
    #[serde(default)]
    pub adapt_observations: u64,
    /// Typed drift events (bias, variance blow-up, cluster mismatch)
    /// emitted by the drift detectors.
    #[serde(default)]
    pub drift_events: u64,
    /// Selections where the adaptive correction changed the configuration
    /// the static model would have picked.
    #[serde(default)]
    pub adapt_reselections: u64,
    /// Kernels flagged for cluster re-classification by a gross mismatch.
    #[serde(default)]
    pub reclassifications: u64,
    /// Deadline-carrying requests shed before service with a typed
    /// `ShedDeadline` (the deadline was already unmeetable).
    #[serde(default)]
    pub sheds: u64,
    /// Deadline-carrying requests that were served but finished *after*
    /// their declared deadline (served late, not shed).
    #[serde(default)]
    pub deadline_misses: u64,
    /// Current brownout level (0 = normal; higher levels progressively
    /// disable optional work before shedding real selects).
    #[serde(default)]
    pub brownout_level: u8,
    /// Times this shard observed its lease evicted by the coordinator
    /// (a renew rejected with `unknown-lease` after silence).
    #[serde(default)]
    pub evicted_shards: u64,
}

/// Snapshot inputs that live outside the registry: the shard lease state
/// machine (guarded by its own lock) and the recovery-journal counters.
#[derive(Debug, Clone)]
pub struct LeaseReport {
    /// `standalone`, `unleased`, `leased`, or `degraded`.
    pub lease_state: String,
    /// The cap the shard currently enforces.
    pub lease_budget_w: f64,
    /// Times the shard entered degraded mode.
    pub degraded_entries: u64,
    /// Journal entries appended by this process.
    pub journal_appends: u64,
    /// Journal entries replayed at startup.
    pub journal_replayed: u64,
    /// Current brownout level (0 = normal).
    pub brownout_level: u8,
    /// Times this shard's lease was evicted by the coordinator.
    pub evicted_shards: u64,
}

impl Default for LeaseReport {
    fn default() -> Self {
        Self {
            lease_state: "standalone".into(),
            lease_budget_w: 0.0,
            degraded_entries: 0,
            journal_appends: 0,
            journal_replayed: 0,
            brownout_level: 0,
            evicted_shards: 0,
        }
    }
}

/// Thread-safe metric registry shared by all sessions.
#[derive(Default)]
pub struct Metrics {
    requests_total: AtomicU64,
    by_kind: Mutex<BTreeMap<String, u64>>,
    latencies_ns: Mutex<Vec<u64>>,
    next_slot: AtomicU64,
    overloaded: AtomicU64,
    protocol_errors: AtomicU64,
    reselections: AtomicU64,
    idem_replays: AtomicU64,
    degradation: Mutex<BTreeMap<String, u64>>,
    lease_renews: AtomicU64,
    renew_latencies_ns: Mutex<Vec<u64>>,
    renew_next_slot: AtomicU64,
    adapt_observations: AtomicU64,
    drift_events: AtomicU64,
    adapt_reselections: AtomicU64,
    reclassifications: AtomicU64,
    sheds: AtomicU64,
    deadline_misses: AtomicU64,
}

impl Metrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one served request of `kind` with its service latency in
    /// nanoseconds (sub-µs services must not collapse to 0).
    pub fn record_request(&self, kind: &str, latency_ns: u64) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        *self.by_kind.lock().entry(kind.to_string()).or_insert(0) += 1;
        let mut lat = self.latencies_ns.lock();
        if lat.len() < LATENCY_RESERVOIR {
            lat.push(latency_ns);
        } else {
            let slot = self.next_slot.fetch_add(1, Ordering::Relaxed) as usize;
            lat[slot % LATENCY_RESERVOIR] = latency_ns;
        }
    }

    /// Count a typed `Overloaded` rejection.
    pub fn record_overloaded(&self) {
        self.overloaded.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a wire-protocol failure.
    pub fn record_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a budget reshuffle that re-ran selection in some session.
    pub fn record_reselection(&self) {
        self.reselections.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a `Run` answered from the idempotency memo.
    pub fn record_idem_replay(&self) {
        self.idem_replays.fetch_add(1, Ordering::Relaxed);
    }

    /// Idempotent replays so far.
    pub fn idem_replays(&self) -> u64 {
        self.idem_replays.load(Ordering::Relaxed)
    }

    /// Tally one request served at a degradation-ladder rung.
    pub fn record_rung(&self, label: &str) {
        *self.degradation.lock().entry(label.to_string()).or_insert(0) += 1;
    }

    /// Seed the rung tallies from journal replay, so a restarted server's
    /// STATS reconcile with the history it recovered instead of restarting
    /// every rung at zero.
    pub fn seed_rungs(&self, tallies: &BTreeMap<String, u64>) {
        let mut degradation = self.degradation.lock();
        for (label, count) in tallies {
            *degradation.entry(label.clone()).or_insert(0) += count;
        }
    }

    /// Count adaptation-loop activity after an observation: `events` drift
    /// events, of which `reclassifications` flagged a cluster mismatch.
    pub fn record_adapt_observation(&self, events: u64, reclassifications: u64) {
        self.adapt_observations.fetch_add(1, Ordering::Relaxed);
        self.drift_events.fetch_add(events, Ordering::Relaxed);
        self.reclassifications.fetch_add(reclassifications, Ordering::Relaxed);
    }

    /// Count a selection the adaptive correction steered away from the
    /// static model's pick.
    pub fn record_adapt_reselection(&self) {
        self.adapt_reselections.fetch_add(1, Ordering::Relaxed);
    }

    /// Adaptive observations so far.
    pub fn adapt_observations(&self) -> u64 {
        self.adapt_observations.load(Ordering::Relaxed)
    }

    /// Record one successful lease renewal and its round-trip latency in
    /// nanoseconds.
    pub fn record_renew(&self, latency_ns: u64) {
        self.lease_renews.fetch_add(1, Ordering::Relaxed);
        let mut lat = self.renew_latencies_ns.lock();
        if lat.len() < LATENCY_RESERVOIR {
            lat.push(latency_ns);
        } else {
            let slot = self.renew_next_slot.fetch_add(1, Ordering::Relaxed) as usize;
            lat[slot % LATENCY_RESERVOIR] = latency_ns;
        }
    }

    /// Successful lease renewals so far.
    pub fn lease_renews(&self) -> u64 {
        self.lease_renews.load(Ordering::Relaxed)
    }

    /// Wire-protocol failures so far.
    pub fn protocol_errors(&self) -> u64 {
        self.protocol_errors.load(Ordering::Relaxed)
    }

    /// Count a deadline-carrying request shed before service.
    pub fn record_shed(&self) {
        self.sheds.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests shed so far.
    pub fn sheds(&self) -> u64 {
        self.sheds.load(Ordering::Relaxed)
    }

    /// Count a deadline-carrying request that was served late.
    pub fn record_deadline_miss(&self) {
        self.deadline_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Deadline misses so far.
    pub fn deadline_misses(&self) -> u64 {
        self.deadline_misses.load(Ordering::Relaxed)
    }

    /// The current 99th-percentile request latency in µs, straight off
    /// the reservoir. The brownout controller polls this; quantiles sort
    /// a copy, so callers should sample at a bounded rate.
    pub fn p99_latency_us_now(&self) -> u64 {
        self.latency_quantiles().1
    }

    /// Build a snapshot. Cache and arbiter counters live elsewhere, so the
    /// caller passes them in.
    pub fn snapshot(
        &self,
        cache_counts: (u64, u64),
        active_sessions: u64,
        arbiter_rebalances: u64,
        lease: &LeaseReport,
    ) -> StatsSnapshot {
        let (p50, p99) = self.latency_quantiles();
        let (renew_p50, renew_p99) = self.renew_quantiles();
        let (cache_hits, cache_misses) = cache_counts;
        let looked_up = cache_hits + cache_misses;
        StatsSnapshot {
            requests_total: self.requests_total.load(Ordering::Relaxed),
            requests_by_kind: self.by_kind.lock().clone(),
            p50_latency_us: p50,
            p99_latency_us: p99,
            cache_hits,
            cache_misses,
            cache_hit_rate: if looked_up == 0 { 0.0 } else { cache_hits as f64 / looked_up as f64 },
            active_sessions,
            arbiter_rebalances,
            reselections: self.reselections.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            idem_replays: self.idem_replays.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            degradation_tallies: self.degradation.lock().clone(),
            lease_state: lease.lease_state.clone(),
            lease_budget_w: lease.lease_budget_w,
            degraded_entries: lease.degraded_entries,
            lease_renews: self.lease_renews.load(Ordering::Relaxed),
            p50_renew_latency_us: renew_p50,
            p99_renew_latency_us: renew_p99,
            journal_appends: lease.journal_appends,
            journal_replayed: lease.journal_replayed,
            adapt_observations: self.adapt_observations.load(Ordering::Relaxed),
            drift_events: self.drift_events.load(Ordering::Relaxed),
            adapt_reselections: self.adapt_reselections.load(Ordering::Relaxed),
            reclassifications: self.reclassifications.load(Ordering::Relaxed),
            sheds: self.sheds.load(Ordering::Relaxed),
            deadline_misses: self.deadline_misses.load(Ordering::Relaxed),
            brownout_level: lease.brownout_level,
            evicted_shards: lease.evicted_shards,
        }
    }

    fn latency_quantiles(&self) -> (u64, u64) {
        Self::quantiles_us(&mut self.latencies_ns.lock().clone())
    }

    fn renew_quantiles(&self) -> (u64, u64) {
        Self::quantiles_us(&mut self.renew_latencies_ns.lock().clone())
    }

    /// (p50, p99) of nanosecond samples, reported in µs rounded up so a
    /// recorded request is never summarized as 0 µs.
    fn quantiles_us(lat_ns: &mut [u64]) -> (u64, u64) {
        if lat_ns.is_empty() {
            return (0, 0);
        }
        lat_ns.sort_unstable();
        // `.max(1)` guards the (clock-granularity) case of a 0 ns sample:
        // with any samples at all, quantiles are ≥ 1 µs by contract.
        (quantile(lat_ns, 0.50).div_ceil(1000).max(1), quantile(lat_ns, 0.99).div_ceil(1000).max(1))
    }
}

/// Nearest-rank quantile of a sorted, non-empty sample.
pub fn quantile(sorted: &[u64], q: f64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_quantiles() {
        let m = Metrics::new();
        for us in 1..=100u64 {
            m.record_request("select", us * 1000); // µs-scale samples, in ns
        }
        m.record_request("stats", 1_000_000);
        let s = m.snapshot((30, 70), 2, 5, &LeaseReport::default());
        assert_eq!(s.requests_total, 101);
        assert_eq!(s.requests_by_kind["select"], 100);
        assert_eq!(s.requests_by_kind["stats"], 1);
        assert_eq!(s.p50_latency_us, 51);
        assert_eq!(s.p99_latency_us, 100);
        assert_eq!(s.cache_hits, 30);
        assert!((s.cache_hit_rate - 0.30).abs() < 1e-12);
        assert_eq!(s.active_sessions, 2);
        assert_eq!(s.arbiter_rebalances, 5);
    }

    #[test]
    fn sub_microsecond_services_do_not_report_zero() {
        // The PR-8 reservoir bug: warm selects finish in hundreds of ns,
        // and µs-truncated recording summarized a busy server as p50 = 0.
        let m = Metrics::new();
        for ns in [120u64, 300, 450, 800, 950] {
            m.record_request("select", ns);
        }
        let s = m.snapshot((0, 0), 1, 0, &LeaseReport::default());
        assert_eq!(s.p50_latency_us, 1, "sub-µs median rounds up to 1 µs");
        assert_eq!(s.p99_latency_us, 1);
        // Mixed scales: the µs-and-up tail still reports faithfully.
        m.record_request("select", 29_400); // 29.4 µs
        m.record_request("select", 30_001); // just over 30 µs rounds up
        for _ in 0..5 {
            m.record_request("select", 2_000);
        }
        let s = m.snapshot((0, 0), 1, 0, &LeaseReport::default());
        assert_eq!(s.p50_latency_us, 2);
        assert_eq!(s.p99_latency_us, 31);
    }

    #[test]
    fn empty_registry_snapshots_cleanly() {
        let s = Metrics::new().snapshot((0, 0), 0, 0, &LeaseReport::default());
        assert_eq!(s.p50_latency_us, 0);
        assert_eq!(s.p99_latency_us, 0);
        assert_eq!(s.cache_hit_rate, 0.0);
        assert!(s.degradation_tallies.is_empty());
        assert_eq!(s.lease_state, "standalone");
        assert_eq!(s.lease_renews, 0);
        assert_eq!(s.p50_renew_latency_us, 0);
    }

    #[test]
    fn lease_fields_flow_into_the_snapshot() {
        let m = Metrics::new();
        for us in [100u64, 200, 300] {
            m.record_renew(us * 1000);
        }
        let report = LeaseReport {
            lease_state: "degraded".into(),
            lease_budget_w: 7.5,
            degraded_entries: 2,
            journal_appends: 11,
            journal_replayed: 4,
            brownout_level: 2,
            evicted_shards: 1,
        };
        let s = m.snapshot((0, 0), 1, 0, &report);
        assert_eq!(s.lease_state, "degraded");
        assert_eq!(s.lease_budget_w, 7.5);
        assert_eq!(s.degraded_entries, 2);
        assert_eq!(s.lease_renews, 3);
        assert_eq!(s.p50_renew_latency_us, 200);
        assert_eq!(s.p99_renew_latency_us, 300);
        assert_eq!(s.journal_appends, 11);
        assert_eq!(s.journal_replayed, 4);
        assert_eq!(s.brownout_level, 2);
        assert_eq!(s.evicted_shards, 1);
    }

    #[test]
    fn reservoir_is_bounded() {
        let m = Metrics::new();
        for i in 0..(LATENCY_RESERVOIR as u64 + 500) {
            m.record_request("select", i);
        }
        assert_eq!(m.latencies_ns.lock().len(), LATENCY_RESERVOIR);
    }

    #[test]
    fn rung_tallies_accumulate() {
        let m = Metrics::new();
        m.record_rung("model");
        m.record_rung("model");
        m.record_rung("safe-min");
        let s = m.snapshot((0, 0), 0, 0, &LeaseReport::default());
        assert_eq!(s.degradation_tallies["model"], 2);
        assert_eq!(s.degradation_tallies["safe-min"], 1);
    }

    #[test]
    fn seeded_rungs_merge_with_live_tallies() {
        // Recovery replay seeds the rung history; live requests keep
        // adding on top — the snapshot reports the reconciled sum.
        let m = Metrics::new();
        let mut replayed = BTreeMap::new();
        replayed.insert("model".to_string(), 3u64);
        replayed.insert("safe-min".to_string(), 1u64);
        m.seed_rungs(&replayed);
        m.record_rung("model");
        let s = m.snapshot((0, 0), 0, 0, &LeaseReport::default());
        assert_eq!(s.degradation_tallies["model"], 4);
        assert_eq!(s.degradation_tallies["safe-min"], 1);
    }

    #[test]
    fn adaptation_counters_flow_into_the_snapshot() {
        let m = Metrics::new();
        m.record_adapt_observation(0, 0);
        m.record_adapt_observation(2, 1);
        m.record_adapt_reselection();
        let s = m.snapshot((0, 0), 0, 0, &LeaseReport::default());
        assert_eq!(s.adapt_observations, 2);
        assert_eq!(s.drift_events, 2);
        assert_eq!(s.reclassifications, 1);
        assert_eq!(s.adapt_reselections, 1);
    }

    #[test]
    fn pre_adapt_snapshots_parse_with_zero_adapt_counters() {
        // A snapshot serialized before the adaptation counters existed
        // must still deserialize (old recordings, mixed-version fleets).
        let m = Metrics::new();
        let s = m.snapshot((0, 0), 0, 0, &LeaseReport::default());
        let mut json = serde_json::to_string(&s).unwrap();
        for field in
            ["adapt_observations", "drift_events", "adapt_reselections", "reclassifications"]
        {
            json = json.replace(&format!(",\"{field}\":0"), "");
            json = json.replace(&format!("\"{field}\":0,"), "");
        }
        assert!(!json.contains("adapt_observations"));
        let back: StatsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn pre_shed_snapshots_parse_with_zero_overload_counters() {
        // Snapshots serialized before the overload layer existed lack the
        // shed/brownout/eviction fields; they must default to zero.
        let m = Metrics::new();
        let s = m.snapshot((0, 0), 0, 0, &LeaseReport::default());
        let mut json = serde_json::to_string(&s).unwrap();
        for field in ["sheds", "deadline_misses", "brownout_level", "evicted_shards"] {
            json = json.replace(&format!(",\"{field}\":0"), "");
            json = json.replace(&format!("\"{field}\":0,"), "");
        }
        assert!(!json.contains("brownout_level"));
        let back: StatsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn shed_and_deadline_miss_counters_flow_into_the_snapshot() {
        let m = Metrics::new();
        m.record_shed();
        m.record_shed();
        m.record_deadline_miss();
        let s = m.snapshot((0, 0), 0, 0, &LeaseReport::default());
        assert_eq!(s.sheds, 2);
        assert_eq!(s.deadline_misses, 1);
        assert_eq!(s.brownout_level, 0);
        // The reservoir p99 accessor mirrors the snapshot's quantile.
        m.record_request("select", 5_000);
        assert_eq!(m.p99_latency_us_now(), 5);
    }

    #[test]
    fn snapshot_roundtrips_through_the_wire_format() {
        let m = Metrics::new();
        m.record_request("select", 10);
        m.record_rung("model");
        let s = m.snapshot((1, 1), 1, 0, &LeaseReport::default());
        let json = serde_json::to_string(&s).unwrap();
        let back: StatsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
