//! The append-only recovery journal: crash-only serve state.
//!
//! The server's durable artifact (the trained model) is covered by
//! `core::persist`; everything else the selection quality depends on —
//! which sessions were admitted, how the arbiter split the budget, which
//! kernels the engine has profiled — lives in memory and dies with the
//! process. The journal records exactly that state transition stream so a
//! restarted server can *replay* it and resume where the dead one
//! stopped: same arbiter epoch, same next node id, same (re-warmed)
//! profile cache, and therefore byte-identical selections.
//!
//! ## Format
//!
//! One entry per line:
//!
//! ```text
//! <crc32-hex> <seq> <entry-json>\n
//! ```
//!
//! The CRC covers `<seq> <entry-json>`, and `seq` must equal the line's
//! index. On open, the journal validates every line in order and
//! **truncates at the first invalid one**: under the append-only
//! crash-only model the only legitimate damage is a torn tail from a
//! death mid-append, so everything from the first bad line on is crash
//! debris, not data. (A byte flipped by something *other* than a crash
//! also truncates from that point — the journal is an optimization, and
//! a shorter valid prefix is always safe to resume from.)
//!
//! ## Durability
//!
//! Appends go straight to the OS (`File` is unbuffered) and are flushed,
//! not fsynced, by default: the journal survives process death — including
//! SIGKILL, which is what the kill-and-restart e2e and `bench_recovery`
//! exercise — while a whole-machine power loss may drop the OS-buffered
//! tail, which the next open then cleanly truncates away. Per-entry fsync
//! would put a disk round trip on every request; crash-only semantics do
//! not need it. For deployments where the crash window must also cover
//! power loss, [`Journal::open_with_sync`] (the `--journal-sync` flag)
//! upgrades every append batch to `File::sync_data`, trading a disk round
//! trip per append for a zero-loss tail. Replay is byte-for-byte
//! equivalent in both modes — sync changes *when* bytes are durable,
//! never what is written.
//!
//! ## Replay verification
//!
//! Arbiter entries record the epoch *after* their operation. [`replay`]
//! re-applies each operation to a fresh arbiter and checks the recomputed
//! epoch against the recorded one — a divergence means the journal and
//! the arbiter implementation disagree about history, and recovery
//! refuses to guess ([`JournalError::EpochDivergence`]). Sessions that
//! were admitted but never left are *orphans* (their TCP connections died
//! with the old process); replay removes them deterministically in
//! ascending id order and reports them in the [`Recovery`] summary.

use crate::arbiter::{Arbiter, ArbiterPolicy};
use acs_core::crc32;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::{Path, PathBuf};

/// One recorded state transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalEntry {
    /// A session joined the arbiter.
    Admit {
        /// The node id the session was admitted as.
        node_id: u64,
        /// Arbiter epoch after the join.
        epoch: u64,
    },
    /// A session left the arbiter (clean close, not a crash).
    Leave {
        /// The node id that left.
        node_id: u64,
        /// Arbiter epoch after the leave.
        epoch: u64,
    },
    /// A session reported residual headroom and the arbiter re-split.
    Report {
        /// The reporting node.
        node_id: u64,
        /// The reported residual, W.
        residual_w: f64,
        /// Arbiter epoch after the report.
        epoch: u64,
    },
    /// The engine profiled a kernel for the first time (a cache miss that
    /// inserted). Replay re-warms these keys in order.
    CacheKey {
        /// The profiled kernel id.
        kernel_id: String,
    },
    /// The shard's lease budget changed (grant, renewal, or degraded-mode
    /// decay): the arbiter's *global cap* moved. Without this entry a
    /// leased shard's journal could not replay — cap changes bump the
    /// arbiter epoch between Admit/Report entries, and replay would
    /// declare an [`JournalError::EpochDivergence`].
    Cap {
        /// The new shard-wide cap (the lease budget), W.
        cap_w: f64,
        /// Arbiter epoch after the cap change.
        epoch: u64,
    },
    /// A session's [`AdaptivePredictor`](acs_core::AdaptivePredictor)
    /// consumed one measured/predicted ratio pair. The exact `f64` bits
    /// are journaled so replay feeds *identical* measurements through the
    /// Kalman filters and rebuilds bit-identical adaptation state.
    AdaptObs {
        /// The observing session.
        node_id: u64,
        /// Kernel the observation is for.
        kernel_id: String,
        /// `f64::to_bits` of the measured/predicted power ratio.
        power_bits: u64,
        /// `f64::to_bits` of the measured/predicted performance ratio.
        perf_bits: u64,
    },
    /// A session's drift detector confirmed a gross cluster mismatch and
    /// the kernel was flagged for re-classification. Replay cross-checks
    /// this against the mismatch the recomputed filters emit — a
    /// `Reclassify` with no matching recomputed event means the journal
    /// and the adaptation code disagree about history
    /// ([`JournalError::AdaptDivergence`]).
    Reclassify {
        /// The session that observed the mismatch.
        node_id: u64,
        /// The kernel flagged for re-classification.
        kernel_id: String,
    },
    /// A `Run` request finished on a degradation-ladder rung. Replay
    /// re-sums these into the STATS rung tallies so a restarted server's
    /// `degradation_tallies` reconcile with the history it replayed.
    Rung {
        /// The rung label (`model`, or a guard-ladder tier label).
        label: String,
    },
    /// The brownout controller changed level. Pure observability — the
    /// live level is derived from wall-clock latency and always restarts
    /// at 0 after a crash — but the transition history is durable, and
    /// replay re-counts it so a restarted server's STATS reconcile.
    Brownout {
        /// The level entered (0 = normal, rising levels disable more
        /// optional work).
        level: u8,
    },
}

/// One orphaned session's rebuilt adaptation state, keyed by node id.
/// A `Vec` of these (not a map) so the JSON stays string-key-free.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionAdapt {
    /// The session the state belongs to.
    pub node_id: u64,
    /// The predictor as rebuilt by replaying every journaled observation
    /// bit-for-bit.
    pub predictor: acs_core::AdaptivePredictor,
}

/// Typed journal failures.
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem failure.
    Io(String),
    /// Serialization failure (should be unreachable for well-formed entries).
    Format(String),
    /// Replay recomputed a different arbiter epoch than the journal
    /// recorded: the history cannot be trusted.
    EpochDivergence {
        /// Index of the diverging entry.
        index: usize,
        /// The epoch the journal recorded.
        recorded: u64,
        /// The epoch replay recomputed.
        recomputed: u64,
    },
    /// Replay found an operation on a node the journal never admitted.
    UnknownNode {
        /// Index of the offending entry.
        index: usize,
        /// The unknown node id.
        node_id: u64,
    },
    /// Coordinator replay recomputed different lease state than the
    /// journal recorded (epoch, lease id, or an op on a dead lease).
    LeaseDivergence {
        /// Index of the diverging entry.
        index: usize,
        /// What disagreed.
        detail: String,
    },
    /// Replay recomputed different adaptation state than the journal
    /// recorded (a rejected observation, or a `Reclassify` the recomputed
    /// filters never emitted).
    AdaptDivergence {
        /// Index of the diverging entry.
        index: usize,
        /// What disagreed.
        detail: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal io: {e}"),
            JournalError::Format(e) => write!(f, "journal format: {e}"),
            JournalError::EpochDivergence { index, recorded, recomputed } => write!(
                f,
                "journal replay diverged at entry {index}: recorded epoch {recorded}, \
                 recomputed {recomputed} (delete the journal to start cold)"
            ),
            JournalError::UnknownNode { index, node_id } => write!(
                f,
                "journal entry {index} references node {node_id}, which was never admitted \
                 (delete the journal to start cold)"
            ),
            JournalError::LeaseDivergence { index, detail } => write!(
                f,
                "coordinator journal replay diverged at entry {index}: {detail} \
                 (delete the journal to start cold)"
            ),
            JournalError::AdaptDivergence { index, detail } => write!(
                f,
                "adaptation journal replay diverged at entry {index}: {detail} \
                 (delete the journal to start cold)"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e.to_string())
    }
}

struct Inner {
    file: std::fs::File,
    next_seq: u64,
}

/// An open, append-only recovery journal over entry type `E` — the serve
/// shard journals [`JournalEntry`], the fleet coordinator journals
/// [`CoordJournalEntry`](crate::lease::CoordJournalEntry); both get the
/// same CRC framing, torn-tail truncation, and durability knobs.
pub struct Journal<E = JournalEntry> {
    inner: Mutex<Inner>,
    path: PathBuf,
    truncated_tail_bytes: u64,
    recovered: u64,
    sync: bool,
    _entry: std::marker::PhantomData<fn() -> E>,
}

/// Parse one journal line; `None` means the line is damaged (bad UTF-8,
/// bad CRC, wrong sequence number, or unparseable entry).
fn parse_line<E: serde::Deserialize>(line: &[u8], expected_seq: u64) -> Option<E> {
    let line = std::str::from_utf8(line).ok()?;
    let (crc_hex, body) = line.split_once(' ')?;
    if u32::from_str_radix(crc_hex, 16).ok()? != crc32(body.as_bytes()) {
        return None;
    }
    let (seq, json) = body.split_once(' ')?;
    if seq.parse::<u64>().ok()? != expected_seq {
        return None;
    }
    serde_json::from_str(json).ok()
}

impl<E: serde::Serialize + serde::Deserialize> Journal<E> {
    /// Open (or create) the journal at `path` in the default flush-only
    /// durability mode (survives process death; a machine power loss may
    /// drop the OS-buffered tail, truncated away on the next open).
    pub fn open(path: impl AsRef<Path>) -> Result<(Self, Vec<E>), JournalError> {
        Self::open_with_sync(path, false)
    }

    /// Open (or create) the journal at `path`, validating every recorded
    /// line. The valid prefix is returned for [`replay`]; a torn or
    /// damaged tail is physically truncated so future appends extend a
    /// clean log. With `sync`, every append batch is `sync_data`ed, so
    /// the tail also survives machine power loss at the cost of a disk
    /// round trip per append.
    pub fn open_with_sync(
        path: impl AsRef<Path>,
        sync: bool,
    ) -> Result<(Self, Vec<E>), JournalError> {
        let path = path.as_ref().to_path_buf();
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let mut entries = Vec::new();
        let mut valid_end = 0usize;
        while valid_end < bytes.len() {
            let rest = &bytes[valid_end..];
            let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
                break; // torn final line: no terminator
            };
            let Some(entry) = parse_line(&rest[..nl], entries.len() as u64) else {
                break;
            };
            entries.push(entry);
            valid_end += nl + 1;
        }
        let truncated_tail_bytes = (bytes.len() - valid_end) as u64;
        let file = std::fs::OpenOptions::new().create(true).append(true).open(&path)?;
        if truncated_tail_bytes > 0 {
            file.set_len(valid_end as u64)?;
        }
        Ok((
            Self {
                inner: Mutex::new(Inner { file, next_seq: entries.len() as u64 }),
                path,
                truncated_tail_bytes,
                recovered: entries.len() as u64,
                sync,
                _entry: std::marker::PhantomData,
            },
            entries,
        ))
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether appends are `sync_data`ed (the `--journal-sync` mode).
    pub fn synced(&self) -> bool {
        self.sync
    }

    /// Bytes of crash debris discarded when this journal was opened.
    pub fn truncated_tail_bytes(&self) -> u64 {
        self.truncated_tail_bytes
    }

    /// Entries in the log, counting both the recovered prefix and appends
    /// through this handle.
    pub fn entries(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// Entries recovered from disk when this journal was opened (the
    /// STATS `journal_replayed` counter).
    pub fn recovered_entries(&self) -> u64 {
        self.recovered
    }

    /// Entries appended through this handle since open (the STATS
    /// `journal_appends` counter).
    pub fn appended_entries(&self) -> u64 {
        self.inner.lock().next_seq - self.recovered
    }

    /// Append one entry. The sequence number and checksum are assigned
    /// under the journal lock, so concurrent appenders serialize and the
    /// log stays gapless.
    pub fn append(&self, entry: &E) -> Result<(), JournalError> {
        let json = serde_json::to_string(entry).map_err(|e| JournalError::Format(e.to_string()))?;
        let mut inner = self.inner.lock();
        let body = format!("{} {}", inner.next_seq, json);
        let line = format!("{:08x} {}\n", crc32(body.as_bytes()), body);
        inner.file.write_all(line.as_bytes())?;
        inner.file.flush()?;
        if self.sync {
            inner.file.sync_data()?;
        }
        inner.next_seq += 1;
        Ok(())
    }
}

/// What [`replay`] reconstructed, for logging and the recovery bench.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Recovery {
    /// Journal entries replayed.
    pub replayed: u64,
    /// Kernel ids to re-warm the profile cache with, in first-miss order
    /// (deduplicated).
    pub warm_kernels: Vec<String>,
    /// Sessions admitted but never cleanly closed — their connections
    /// died with the old process; replay removed them in ascending order.
    pub orphaned_sessions: Vec<u64>,
    /// The node id the next accepted session should get, so restarted
    /// servers never reuse an id the journal already assigned.
    pub next_node: u64,
    /// Degradation-rung tallies re-summed from `Rung` entries, so a
    /// restarted server's STATS reconcile with replayed history.
    /// `#[serde(default)]` keeps pre-adapt recovery records parseable.
    #[serde(default)]
    pub rung_tallies: std::collections::BTreeMap<String, u64>,
    /// Adaptation state of sessions that never cleanly left, rebuilt
    /// bit-for-bit from `AdaptObs` entries and sorted by node id.
    /// (Cleanly-closed sessions drop their state exactly as the live
    /// server does on `Bye`.)
    #[serde(default)]
    pub adapt: Vec<SessionAdapt>,
    /// Brownout level transitions re-counted from `Brownout` entries.
    /// The live level itself restarts at 0 (it tracks wall-clock latency,
    /// which died with the old process); only the count is history.
    #[serde(default)]
    pub brownout_transitions: u64,
}

/// Fold a validated entry stream into a fresh arbiter, verifying each
/// recorded epoch against the recomputed one.
pub fn replay(
    entries: &[JournalEntry],
    global_cap_w: f64,
    policy: ArbiterPolicy,
) -> Result<(Arbiter, Recovery), JournalError> {
    let mut arbiter = Arbiter::new(global_cap_w, policy);
    let mut warm_kernels: Vec<String> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut next_node = 1u64;
    let mut adapt: std::collections::BTreeMap<u64, acs_core::AdaptivePredictor> =
        std::collections::BTreeMap::new();
    let mut rung_tallies: std::collections::BTreeMap<String, u64> =
        std::collections::BTreeMap::new();
    let mut brownout_transitions = 0u64;
    // (node, kernel) pairs whose last replayed observation emitted a
    // cluster mismatch; each journaled Reclassify must consume one.
    let mut pending_reclassify: std::collections::HashSet<(u64, String)> =
        std::collections::HashSet::new();
    let check = |index: usize, recorded: u64, arbiter: &Arbiter| {
        if arbiter.epoch() == recorded {
            Ok(())
        } else {
            Err(JournalError::EpochDivergence { index, recorded, recomputed: arbiter.epoch() })
        }
    };
    for (index, entry) in entries.iter().enumerate() {
        match entry {
            JournalEntry::Admit { node_id, epoch } => {
                arbiter.join(*node_id);
                next_node = next_node.max(node_id + 1);
                check(index, *epoch, &arbiter)?;
            }
            JournalEntry::Leave { node_id, epoch } => {
                arbiter.leave(*node_id);
                adapt.remove(node_id);
                check(index, *epoch, &arbiter)?;
            }
            JournalEntry::Report { node_id, residual_w, epoch } => {
                if arbiter.report(*node_id, *residual_w).is_none() {
                    return Err(JournalError::UnknownNode { index, node_id: *node_id });
                }
                check(index, *epoch, &arbiter)?;
            }
            JournalEntry::CacheKey { kernel_id } => {
                if seen.insert(kernel_id.clone()) {
                    warm_kernels.push(kernel_id.clone());
                }
            }
            JournalEntry::Cap { cap_w, epoch } => {
                arbiter.set_global_cap(*cap_w);
                check(index, *epoch, &arbiter)?;
            }
            JournalEntry::AdaptObs { node_id, kernel_id, power_bits, perf_bits } => {
                let predictor = adapt.entry(*node_id).or_default();
                let events = predictor
                    .observe_ratios(
                        kernel_id,
                        f64::from_bits(*power_bits),
                        f64::from_bits(*perf_bits),
                    )
                    .map_err(|e| JournalError::AdaptDivergence {
                        index,
                        detail: format!("journaled observation rejected on replay: {e}"),
                    })?;
                if events.iter().any(|e| matches!(e, acs_core::DriftEvent::ClusterMismatch { .. }))
                {
                    pending_reclassify.insert((*node_id, kernel_id.clone()));
                }
            }
            JournalEntry::Reclassify { node_id, kernel_id } => {
                if !pending_reclassify.remove(&(*node_id, kernel_id.clone())) {
                    return Err(JournalError::AdaptDivergence {
                        index,
                        detail: format!(
                            "journal records a reclassification of {kernel_id} on node \
                             {node_id} that the recomputed filters never emitted"
                        ),
                    });
                }
            }
            JournalEntry::Rung { label } => {
                *rung_tallies.entry(label.clone()).or_insert(0) += 1;
            }
            JournalEntry::Brownout { .. } => {
                brownout_transitions += 1;
            }
        }
    }
    let orphaned_sessions = arbiter.node_ids();
    for &id in &orphaned_sessions {
        arbiter.leave(id);
    }
    let adapt =
        adapt.into_iter().map(|(node_id, predictor)| SessionAdapt { node_id, predictor }).collect();
    Ok((
        arbiter,
        Recovery {
            replayed: entries.len() as u64,
            warm_kernels,
            orphaned_sessions,
            next_node,
            rung_tallies,
            adapt,
            brownout_transitions,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(test: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("acs-journal-{test}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Drive a real arbiter and journal its transitions with truthful
    /// epochs, the way the server does.
    fn journal_some_history(journal: &Journal, arbiter: &mut Arbiter) {
        arbiter.join(1);
        journal.append(&JournalEntry::Admit { node_id: 1, epoch: arbiter.epoch() }).unwrap();
        journal.append(&JournalEntry::CacheKey { kernel_id: "LU/Small/lud".into() }).unwrap();
        arbiter.join(2);
        journal.append(&JournalEntry::Admit { node_id: 2, epoch: arbiter.epoch() }).unwrap();
        arbiter.report(2, 5.0);
        journal
            .append(&JournalEntry::Report { node_id: 2, residual_w: 5.0, epoch: arbiter.epoch() })
            .unwrap();
        journal.append(&JournalEntry::CacheKey { kernel_id: "SMC/Large/acc".into() }).unwrap();
        journal.append(&JournalEntry::CacheKey { kernel_id: "LU/Small/lud".into() }).unwrap();
        arbiter.leave(1);
        journal.append(&JournalEntry::Leave { node_id: 1, epoch: arbiter.epoch() }).unwrap();
    }

    #[test]
    fn appended_entries_reopen_identically() {
        let dir = scratch("roundtrip");
        let path = dir.join("serve.journal");
        let (journal, empty) = Journal::open(&path).unwrap();
        assert!(empty.is_empty());
        let mut arbiter = Arbiter::new(100.0, ArbiterPolicy::DemandProportional);
        journal_some_history(&journal, &mut arbiter);
        assert_eq!(journal.entries(), 7);
        drop(journal);

        let (reopened, entries) = Journal::<JournalEntry>::open(&path).unwrap();
        assert_eq!(entries.len(), 7);
        assert_eq!(reopened.entries(), 7);
        assert_eq!(reopened.truncated_tail_bytes(), 0);
        assert_eq!(entries[0], JournalEntry::Admit { node_id: 1, epoch: 1 });
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let dir = scratch("torn");
        let path = dir.join("serve.journal");
        let (journal, _) = Journal::open(&path).unwrap();
        let mut arbiter = Arbiter::new(100.0, ArbiterPolicy::EqualShare);
        journal_some_history(&journal, &mut arbiter);
        drop(journal);

        // A death mid-append leaves a partial line with no newline.
        let clean_len = std::fs::metadata(&path).unwrap().len();
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"deadbeef 7 {\"Admit\":{\"node").unwrap();
        drop(f);

        let (reopened, entries) = Journal::open(&path).unwrap();
        assert_eq!(entries.len(), 7, "the valid prefix survives");
        assert!(reopened.truncated_tail_bytes() > 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len, "debris chopped");

        // The log keeps extending cleanly after the truncation.
        reopened.append(&JournalEntry::CacheKey { kernel_id: "k".into() }).unwrap();
        drop(reopened);
        let (_, entries) = Journal::<JournalEntry>::open(&path).unwrap();
        assert_eq!(entries.len(), 8);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn corrupt_line_truncates_from_there() {
        let dir = scratch("corrupt");
        let path = dir.join("serve.journal");
        let (journal, _) = Journal::open(&path).unwrap();
        let mut arbiter = Arbiter::new(100.0, ArbiterPolicy::EqualShare);
        journal_some_history(&journal, &mut arbiter);
        drop(journal);

        // Flip one payload byte in the third line: its CRC now fails, and
        // everything from that line on is discarded.
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let mut bad = lines[2].to_string();
        let flip = bad.len() - 2;
        bad.replace_range(flip..flip + 1, "~");
        let mut rewritten = lines[..2].join("\n");
        rewritten.push('\n');
        rewritten.push_str(&bad);
        rewritten.push('\n');
        rewritten.push_str(&lines[3..].join("\n"));
        rewritten.push('\n');
        std::fs::write(&path, rewritten).unwrap();

        let (reopened, entries) = Journal::<JournalEntry>::open(&path).unwrap();
        assert_eq!(entries.len(), 2, "valid prefix before the flipped byte");
        assert!(reopened.truncated_tail_bytes() > 0);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn sequence_gaps_invalidate_the_tail() {
        let dir = scratch("seqgap");
        let path = dir.join("serve.journal");
        // Hand-craft two lines whose CRCs are right but whose second
        // sequence number skips: a spliced log must not replay past the gap.
        let e0 = serde_json::to_string(&JournalEntry::CacheKey { kernel_id: "a".into() }).unwrap();
        let e1 = serde_json::to_string(&JournalEntry::CacheKey { kernel_id: "b".into() }).unwrap();
        let body0 = format!("0 {e0}");
        let body2 = format!("2 {e1}"); // gap: seq 1 missing
        let text = format!(
            "{:08x} {body0}\n{:08x} {body2}\n",
            acs_core::crc32(body0.as_bytes()),
            acs_core::crc32(body2.as_bytes())
        );
        std::fs::write(&path, text).unwrap();
        let (_, entries) = Journal::<JournalEntry>::open(&path).unwrap();
        assert_eq!(entries.len(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn replay_rebuilds_the_arbiter_and_cleans_orphans() {
        let dir = scratch("replay");
        let path = dir.join("serve.journal");
        let (journal, _) = Journal::open(&path).unwrap();
        let mut live = Arbiter::new(100.0, ArbiterPolicy::DemandProportional);
        journal_some_history(&journal, &mut live);
        drop(journal);

        let (_, entries) = Journal::open(&path).unwrap();
        let (rebuilt, recovery) =
            replay(&entries, 100.0, ArbiterPolicy::DemandProportional).unwrap();
        assert_eq!(recovery.replayed, 7);
        // Node 2 never left: it is an orphan, removed by replay.
        assert_eq!(recovery.orphaned_sessions, vec![2]);
        assert_eq!(rebuilt.node_count(), 0);
        assert_eq!(recovery.next_node, 3, "ids 1 and 2 are burned");
        // Cache keys dedup in first-miss order.
        assert_eq!(recovery.warm_kernels, vec!["LU/Small/lud", "SMC/Large/acc"]);
        assert_eq!(rebuilt.conservation_error_w(), 0.0);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn sync_and_flush_modes_write_and_replay_equivalently() {
        // `--journal-sync` changes when bytes become durable, never what
        // is written: the same history must produce byte-identical files,
        // and replay must reconstruct the same arbiter either way.
        let dir = scratch("syncmode");
        let flush_path = dir.join("flush.journal");
        let sync_path = dir.join("sync.journal");
        let (flush, _) = Journal::open_with_sync(&flush_path, false).unwrap();
        let (sync, _) = Journal::open_with_sync(&sync_path, true).unwrap();
        assert!(!flush.synced());
        assert!(sync.synced());
        let mut a = Arbiter::new(100.0, ArbiterPolicy::DemandProportional);
        journal_some_history(&flush, &mut a);
        let mut b = Arbiter::new(100.0, ArbiterPolicy::DemandProportional);
        journal_some_history(&sync, &mut b);
        assert_eq!(flush.appended_entries(), sync.appended_entries());
        drop((flush, sync));

        let flush_bytes = std::fs::read(&flush_path).unwrap();
        let sync_bytes = std::fs::read(&sync_path).unwrap();
        assert_eq!(flush_bytes, sync_bytes, "sync mode must not change the format");

        let (_, fe): (Journal, Vec<JournalEntry>) = Journal::open(&flush_path).unwrap();
        let (_, se): (Journal, Vec<JournalEntry>) = Journal::open(&sync_path).unwrap();
        let (fa, fr) = replay(&fe, 100.0, ArbiterPolicy::DemandProportional).unwrap();
        let (sa, sr) = replay(&se, 100.0, ArbiterPolicy::DemandProportional).unwrap();
        assert_eq!(fr, sr);
        assert_eq!(fa.epoch(), sa.epoch());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn replay_applies_cap_entries_as_lease_budgets() {
        // A leased shard journals every cap move; replay must land on the
        // same shrunken cap and verify the epochs the moves produced.
        let mut live = Arbiter::new(100.0, ArbiterPolicy::EqualShare);
        let mut entries = Vec::new();
        live.join(1);
        entries.push(JournalEntry::Admit { node_id: 1, epoch: live.epoch() });
        live.set_global_cap(64.0);
        entries.push(JournalEntry::Cap { cap_w: 64.0, epoch: live.epoch() });
        live.join(2);
        entries.push(JournalEntry::Admit { node_id: 2, epoch: live.epoch() });
        let (rebuilt, recovery) = replay(&entries, 100.0, ArbiterPolicy::EqualShare).unwrap();
        assert_eq!(rebuilt.global_cap_w(), 64.0);
        assert_eq!(recovery.orphaned_sessions, vec![1, 2]);

        // A cap entry with an impossible epoch refuses to replay.
        let bogus = vec![JournalEntry::Cap { cap_w: 50.0, epoch: 99 }];
        assert!(matches!(
            replay(&bogus, 100.0, ArbiterPolicy::EqualShare),
            Err(JournalError::EpochDivergence { .. })
        ));
    }

    #[test]
    fn replay_rebuilds_adaptation_state_and_rung_tallies() {
        // Drive a live predictor, journal the exact ratio bits the way the
        // server does, and check replay lands on bit-identical state.
        let mut live = acs_core::AdaptivePredictor::default();
        let mut entries = vec![JournalEntry::Admit { node_id: 1, epoch: 1 }];
        let ratios = [(1.0, 1.0), (1.01, 0.99), (0.99, 1.0), (1.0, 1.01), (2.0, 0.5), (2.0, 0.5)];
        for (p, q) in ratios {
            let events = live.observe_ratios("LU/Small/lud", p, q).unwrap();
            entries.push(JournalEntry::AdaptObs {
                node_id: 1,
                kernel_id: "LU/Small/lud".into(),
                power_bits: f64::to_bits(p),
                perf_bits: f64::to_bits(q),
            });
            if events.iter().any(|e| matches!(e, acs_core::DriftEvent::ClusterMismatch { .. })) {
                entries.push(JournalEntry::Reclassify {
                    node_id: 1,
                    kernel_id: "LU/Small/lud".into(),
                });
            }
        }
        assert!(
            live.reclassifications() > 0,
            "the 2x power ratio after a 1.0 baseline must trip the mismatch detector"
        );
        entries.push(JournalEntry::Rung { label: "model".into() });
        entries.push(JournalEntry::Rung { label: "model".into() });
        entries.push(JournalEntry::Rung { label: "frequency".into() });

        let (_, recovery) = replay(&entries, 100.0, ArbiterPolicy::EqualShare).unwrap();
        assert_eq!(recovery.adapt.len(), 1, "the orphaned session keeps its state");
        assert_eq!(recovery.adapt[0].node_id, 1);
        assert_eq!(recovery.adapt[0].predictor, live, "replayed state must be bit-identical");
        assert_eq!(recovery.adapt[0].predictor.state_digest(), live.state_digest());
        assert_eq!(recovery.rung_tallies.get("model"), Some(&2));
        assert_eq!(recovery.rung_tallies.get("frequency"), Some(&1));
    }

    #[test]
    fn clean_leave_drops_the_sessions_adaptation_state() {
        let mut live = Arbiter::new(100.0, ArbiterPolicy::EqualShare);
        live.join(1);
        let entries = vec![
            JournalEntry::Admit { node_id: 1, epoch: live.epoch() },
            JournalEntry::AdaptObs {
                node_id: 1,
                kernel_id: "k".into(),
                power_bits: f64::to_bits(1.0),
                perf_bits: f64::to_bits(1.0),
            },
            JournalEntry::Leave {
                node_id: 1,
                epoch: {
                    live.leave(1);
                    live.epoch()
                },
            },
        ];
        let (_, recovery) = replay(&entries, 100.0, ArbiterPolicy::EqualShare).unwrap();
        assert!(recovery.adapt.is_empty(), "Bye discards adaptation state, so must replay");
    }

    #[test]
    fn replay_rejects_unearned_reclassify_entries() {
        let entries = vec![
            JournalEntry::Admit { node_id: 1, epoch: 1 },
            JournalEntry::Reclassify { node_id: 1, kernel_id: "k".into() },
        ];
        match replay(&entries, 100.0, ArbiterPolicy::EqualShare) {
            Err(JournalError::AdaptDivergence { index: 1, .. }) => {}
            other => panic!("expected AdaptDivergence, got {other:?}"),
        }
    }

    #[test]
    fn replay_rejects_non_finite_journaled_observations() {
        let entries = vec![JournalEntry::AdaptObs {
            node_id: 1,
            kernel_id: "k".into(),
            power_bits: f64::to_bits(f64::NAN),
            perf_bits: f64::to_bits(1.0),
        }];
        match replay(&entries, 100.0, ArbiterPolicy::EqualShare) {
            Err(JournalError::AdaptDivergence { index: 0, .. }) => {}
            other => panic!("expected AdaptDivergence, got {other:?}"),
        }
    }

    #[test]
    fn pre_adapt_recovery_records_parse_with_empty_adapt_fields() {
        // Recovery summaries serialized before the adaptation layer lack
        // the rung_tallies/adapt fields; they must deserialize as empty.
        let json = r#"{"replayed":3,"warm_kernels":["k"],"orphaned_sessions":[2],"next_node":3}"#;
        let recovery: Recovery = serde_json::from_str(json).unwrap();
        assert_eq!(recovery.replayed, 3);
        assert!(recovery.rung_tallies.is_empty());
        assert!(recovery.adapt.is_empty());
        assert_eq!(recovery.brownout_transitions, 0);
    }

    #[test]
    fn replay_counts_brownout_transitions_without_restoring_the_level() {
        // Brownout entries are durable history, but the live level is a
        // wall-clock-derived quantity: replay counts the transitions and
        // nothing else (a restarted server always starts at level 0).
        let entries = vec![
            JournalEntry::Brownout { level: 1 },
            JournalEntry::Brownout { level: 2 },
            JournalEntry::Brownout { level: 0 },
        ];
        let (arbiter, recovery) = replay(&entries, 100.0, ArbiterPolicy::EqualShare).unwrap();
        assert_eq!(recovery.brownout_transitions, 3);
        assert_eq!(recovery.replayed, 3);
        assert_eq!(arbiter.epoch(), 0, "brownout transitions never touch the arbiter");
    }

    #[test]
    fn replay_rejects_epoch_divergence() {
        let entries = vec![JournalEntry::Admit { node_id: 1, epoch: 42 }];
        match replay(&entries, 100.0, ArbiterPolicy::EqualShare) {
            Err(JournalError::EpochDivergence { index: 0, recorded: 42, recomputed }) => {
                assert_ne!(recomputed, 42);
            }
            other => panic!("expected EpochDivergence, got {other:?}"),
        }
    }

    #[test]
    fn replay_rejects_reports_for_unknown_nodes() {
        let entries = vec![JournalEntry::Report { node_id: 9, residual_w: 1.0, epoch: 1 }];
        match replay(&entries, 100.0, ArbiterPolicy::EqualShare) {
            Err(JournalError::UnknownNode { index: 0, node_id: 9 }) => {}
            other => panic!("expected UnknownNode, got {other:?}"),
        }
    }

    #[test]
    fn replayed_budgets_match_the_live_arbiter_bit_for_bit() {
        // The property the kill-and-restart e2e depends on: replaying the
        // journal yields the same epoch and budgets the dead server had.
        let dir = scratch("bitequal");
        let path = dir.join("serve.journal");
        let (journal, _) = Journal::open(&path).unwrap();
        let mut live = Arbiter::new(77.0, ArbiterPolicy::DemandProportional);
        live.join(1);
        journal.append(&JournalEntry::Admit { node_id: 1, epoch: live.epoch() }).unwrap();
        live.join(2);
        journal.append(&JournalEntry::Admit { node_id: 2, epoch: live.epoch() }).unwrap();
        live.report(1, 12.5);
        journal
            .append(&JournalEntry::Report { node_id: 1, residual_w: 12.5, epoch: live.epoch() })
            .unwrap();
        drop(journal);

        let (_, entries) = Journal::open(&path).unwrap();
        // Replay, but keep the orphans around for the comparison by
        // rebuilding manually up to the last entry.
        let mut rebuilt = Arbiter::new(77.0, ArbiterPolicy::DemandProportional);
        for e in &entries {
            match e {
                JournalEntry::Admit { node_id, .. } => {
                    rebuilt.join(*node_id);
                }
                JournalEntry::Report { node_id, residual_w, .. } => {
                    rebuilt.report(*node_id, *residual_w);
                }
                _ => {}
            }
        }
        assert_eq!(rebuilt.epoch(), live.epoch());
        for id in live.node_ids() {
            assert_eq!(
                rebuilt.budget_of(id).unwrap().to_bits(),
                live.budget_of(id).unwrap().to_bits(),
                "node {id} budget diverged"
            );
        }
        std::fs::remove_dir_all(dir).unwrap();
    }
}
