//! **acs-serve** — a multi-tenant online selection server.
//!
//! The paper's online stage answers "which configuration should this
//! kernel run at under this power cap?" in under a millisecond — but only
//! inside one-shot CLI invocations. This crate turns it into a
//! long-running daemon: trained offline artifacts are loaded once, every
//! TCP connection becomes a *node* of a simulated cluster, and a
//! **power-budget arbiter** partitions a global cap across the connected
//! nodes (equal-share, or demand-proportional using each node's reported
//! residual headroom). When the arbiter reshuffles budgets, sessions
//! re-run selection from their cached predicted frontiers — the paper's
//! Section III-C dynamic-constraint property, exercised as a service.
//!
//! Module map:
//! - [`protocol`] — length-prefixed JSON frames, typed [`ProtocolError`]
//! - [`engine`] — memoized classify+predict, batch fan-out on rayon,
//!   bounded LRU caches, idempotency memo
//! - [`arbiter`] — global-cap partitioning policies (budgets always sum
//!   exactly to the cap)
//! - [`metrics`] — counters, latency quantiles, the `STATS` snapshot
//! - [`server`] — listener, admission control, sessions, shutdown
//! - [`journal`] — append-only recovery journal; a restarted server
//!   replays it and resumes with identical budgets and a warm cache
//! - [`chaosproxy`] — seeded fault-injecting TCP proxy for hardening
//!   tests (torn frames, corruption, delays, duplicates, disconnects,
//!   partitions)
//! - [`lease`] — the fleet layer's state machines: the coordinator's
//!   lease table (epoch-fenced, encumbrance-at-floor expiry, exact-sum
//!   conservation) and the shard's degraded-mode cap
//! - [`coordinator`] — the `acs coordinator` process: owns the global
//!   budget, leases slices to shards, journals every grant/renew for
//!   crash failover
//!
//! Determinism contract (DESIGN.md §11): for a single-session client, a
//! fixed seed and a recorded request stream replay to a byte-identical
//! response log. Responses therefore never leak cache state, wall-clock
//! time, or thread interleavings; those live only in the `STATS`
//! snapshot, which replay logs exclude.

pub mod arbiter;
pub mod chaosproxy;
pub mod coordinator;
pub mod engine;
pub mod journal;
pub mod lease;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use arbiter::{Arbiter, ArbiterPolicy};
pub use chaosproxy::{ChaosPlan, ChaosProxy, ChaosProxyHandle, ChaosStats};
pub use coordinator::{CoordClient, Coordinator, CoordinatorConfig, CoordinatorHandle};
pub use engine::{Engine, EngineError};
pub use journal::{replay, Journal, JournalEntry, JournalError, Recovery, SessionAdapt};
pub use lease::{
    replay_coordinator, CoordJournalEntry, CoordRecovery, CoordRequest, CoordResponse, CoordStats,
    GrantOutcome, LeaseError, LeaseState, LeaseTable, ShardLease, ShardLeaseState,
};
pub use metrics::{LeaseReport, Metrics, StatsSnapshot};
pub use protocol::{
    read_frame, read_frame_blocking, write_frame, ProtocolError, ReadOutcome, ReportFeedback,
    Request, Response, Selection, MAX_FRAME_LEN,
};
pub use server::{
    brownout_level_for, required_priority, should_shed, Client, ServeConfig, ServeError, Server,
    ServerHandle,
};
