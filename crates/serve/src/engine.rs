//! The request executor: memoized online selection over a shared model.
//!
//! The cold path for a kernel is the paper's full online stage — two
//! sample-configuration runs, CART classification, and per-configuration
//! regression (Section III-C). The engine memoizes the resulting
//! [`PredictedProfile`] per kernel id, so repeat clients pay only a Pareto
//! frontier walk. Batches fan onto the workspace rayon pool with
//! index-ordered collection, so batch responses are deterministic.
//!
//! Determinism rule (DESIGN.md §11): a cache hit and a cache miss must
//! produce byte-identical selections. That holds because the profile is a
//! pure function of `(machine seed, kernel id, model)` — the cache changes
//! *when* work happens, never *what* is answered — and it is why
//! [`Selection`] carries no hit/miss flag; hit rates live in the metrics
//! snapshot only. The same rule makes eviction safe: the profile cache is
//! bounded LRU (least-recently-used out first, ties broken by kernel id),
//! and an evicted kernel is simply recomputed to the identical value.
//!
//! Two memo layers live here:
//!
//! - the **profile cache** (kernel id → [`PredictedProfile`]), a pure
//!   memo whose misses are reported to an optional hook — the server
//!   wires that hook to the recovery journal so a restart can re-warm
//!   the same keys;
//! - the **idempotency memo** (client key → [`Response`]), which makes
//!   retried `Run` requests exactly-once in effect: the first successful
//!   execution's response bytes are replayed verbatim for any retry
//!   carrying the same key. Also bounded LRU; an evicted key merely
//!   downgrades a late retry to a re-execution.

use crate::protocol::{Response, Selection};
use acs_core::{
    sample_config, FastModel, PredictedProfile, SamplePair, SelectScratch, TrainedModel,
};
use acs_sim::{Device, KernelCharacteristics, Machine};
use parking_lot::Mutex;
use rayon::prelude::*;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Typed engine failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The kernel id is not in the suite.
    UnknownKernel(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownKernel(id) => {
                write!(f, "unknown kernel '{id}' (try `acs suite`)")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Default bound on memoized kernel profiles. The full suite is far
/// smaller, so the default never evicts in practice; tests shrink it.
pub const DEFAULT_PROFILE_CAPACITY: usize = 512;

/// Default bound on remembered idempotency keys.
pub const DEFAULT_IDEM_CAPACITY: usize = 1024;

/// An LRU slot: the value plus the tick of its last touch.
struct Slot<V> {
    value: V,
    last_used: u64,
}

/// Called with the kernel id whenever a profile-cache miss inserts a new
/// entry (the server journals these so a restart can re-warm the cache).
type MissHook = Box<dyn Fn(&str) + Send + Sync>;

/// Shared, thread-safe selection engine.
pub struct Engine {
    model: Arc<TrainedModel>,
    /// The model precompiled for flat evaluation (DESIGN.md §15), built
    /// once at engine construction so cold misses skip per-request
    /// tree-flattening and regression-table setup.
    fast: FastModel,
    machine: Machine,
    kernels: BTreeMap<String, KernelCharacteristics>,
    cache: Mutex<HashMap<String, Slot<Arc<PredictedProfile>>>>,
    profile_capacity: usize,
    idem: Mutex<HashMap<u64, Slot<Response>>>,
    idem_capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    on_miss: Mutex<Option<MissHook>>,
}

/// Evict least-recently-used slots (ties broken by smallest key, so the
/// victim is deterministic under equal ticks) until `map` fits `capacity`.
fn evict_lru<K: Ord + std::hash::Hash + Clone, V>(map: &mut HashMap<K, Slot<V>>, capacity: usize) {
    while map.len() > capacity {
        let victim = map
            .iter()
            .min_by(|(ka, a), (kb, b)| a.last_used.cmp(&b.last_used).then_with(|| ka.cmp(kb)))
            .map(|(k, _)| k.clone())
            .expect("non-empty map over capacity");
        map.remove(&victim);
    }
}

impl Engine {
    /// An engine answering for the full benchmark suite on `machine`.
    pub fn new(model: Arc<TrainedModel>, machine: Machine) -> Self {
        let kernels =
            acs_kernels::all_kernel_instances().into_iter().map(|k| (k.id(), k)).collect();
        Self {
            fast: FastModel::new(&model),
            model,
            machine,
            kernels,
            cache: Mutex::new(HashMap::new()),
            profile_capacity: DEFAULT_PROFILE_CAPACITY,
            idem: Mutex::new(HashMap::new()),
            idem_capacity: DEFAULT_IDEM_CAPACITY,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            on_miss: Mutex::new(None),
        }
    }

    /// Shrink (or grow) the profile-cache bound. Clamped to at least 1.
    pub fn with_profile_capacity(mut self, capacity: usize) -> Self {
        self.profile_capacity = capacity.max(1);
        self
    }

    /// Shrink (or grow) the idempotency-memo bound. Clamped to at least 1.
    pub fn with_idem_capacity(mut self, capacity: usize) -> Self {
        self.idem_capacity = capacity.max(1);
        self
    }

    /// Install the cache-miss hook (server → recovery journal). Installed
    /// *after* recovery warm-up so replayed keys are not re-journaled.
    pub fn set_miss_hook(&self, hook: MissHook) {
        *self.on_miss.lock() = Some(hook);
    }

    /// The trained model the engine serves.
    pub fn model(&self) -> &Arc<TrainedModel> {
        &self.model
    }

    /// The kernel with this id, if it is in the suite.
    pub fn kernel(&self, id: &str) -> Option<&KernelCharacteristics> {
        self.kernels.get(id)
    }

    /// `(hits, misses)` of the profile cache since startup.
    pub fn cache_counts(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// Kernels currently memoized (≤ the configured capacity).
    pub fn cached_profiles(&self) -> usize {
        self.cache.lock().len()
    }

    /// The memoized predicted profile for a kernel; computed on first use
    /// (two sample runs + classify + regress), a map lookup afterwards.
    /// The cache is bounded: beyond capacity the least-recently-used
    /// kernel is dropped and will be recomputed — to the bit-identical
    /// value — if asked for again.
    pub fn profile(&self, kernel_id: &str) -> Result<Arc<PredictedProfile>, EngineError> {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        if let Some(hit) = self.cache.lock().get_mut(kernel_id) {
            hit.last_used = tick;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(&hit.value));
        }
        let kernel = self
            .kernels
            .get(kernel_id)
            .ok_or_else(|| EngineError::UnknownKernel(kernel_id.to_string()))?;
        // Compute outside the lock: concurrent misses for the same kernel
        // duplicate pure work but agree on the result bit-for-bit (the
        // profile is a function of seed + kernel + model only).
        let cpu = self.machine.run_iter(kernel, &sample_config(Device::Cpu), 0);
        let gpu = self.machine.run_iter(kernel, &sample_config(Device::Gpu), 1);
        // Per-thread scratch arena: connection threads and rayon batch
        // workers each reuse one across requests (the profile itself still
        // owns its points/frontier — the scratch only absorbs the
        // intermediate sort/sweep allocations).
        thread_local! {
            static SCRATCH: std::cell::RefCell<SelectScratch> =
                std::cell::RefCell::new(SelectScratch::new());
        }
        let profile = SCRATCH.with(|s| {
            Arc::new(self.fast.predict_with(&SamplePair::new(cpu, gpu), &mut s.borrow_mut()))
        });
        self.misses.fetch_add(1, Ordering::Relaxed);
        let (result, inserted) = {
            let mut cache = self.cache.lock();
            let inserted = !cache.contains_key(kernel_id);
            let slot = cache
                .entry(kernel_id.to_string())
                .or_insert(Slot { value: profile, last_used: tick });
            slot.last_used = tick;
            let result = Arc::clone(&slot.value);
            evict_lru(&mut cache, self.profile_capacity);
            (result, inserted)
        };
        if inserted {
            // Outside the cache lock: the hook may take the journal lock.
            if let Some(hook) = self.on_miss.lock().as_ref() {
                hook(kernel_id);
            }
        }
        Ok(result)
    }

    /// The memoized response for an idempotency key, if the keyed request
    /// already executed. Refreshes the key's LRU position.
    pub fn idem_lookup(&self, key: u64) -> Option<Response> {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut idem = self.idem.lock();
        let slot = idem.get_mut(&key)?;
        slot.last_used = tick;
        Some(slot.value.clone())
    }

    /// Remember a successful response under its idempotency key so a
    /// retry replays these exact bytes instead of executing again.
    pub fn idem_store(&self, key: u64, response: &Response) {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut idem = self.idem.lock();
        idem.insert(key, Slot { value: response.clone(), last_used: tick });
        evict_lru(&mut idem, self.idem_capacity);
    }

    /// Select a configuration for one kernel under a budget.
    pub fn select(&self, kernel_id: &str, budget_w: f64) -> Result<Selection, EngineError> {
        let profile = self.profile(kernel_id)?;
        let config = profile.select(budget_w);
        let point = profile.point_for(&config);
        Ok(Selection {
            kernel_id: kernel_id.to_string(),
            cluster: profile.cluster,
            config,
            predicted_power_w: point.power_w,
            predicted_perf: point.perf,
            budget_w,
        })
    }

    /// Select for many kernels at once on the rayon pool. Results are
    /// collected in request order (index-ordered), so the response is
    /// independent of worker scheduling.
    pub fn select_batch(
        &self,
        kernel_ids: &[String],
        budget_w: f64,
    ) -> Vec<Result<Selection, EngineError>> {
        kernel_ids.par_iter().map(|id| self.select(id, budget_w)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_core::{train, KernelProfile, TrainingParams};

    fn engine() -> Engine {
        let machine = Machine::new(2014);
        let kernels = acs_kernels::all_kernel_instances();
        let profiles: Vec<KernelProfile> =
            kernels.iter().take(12).map(|k| KernelProfile::collect(&machine, k)).collect();
        let model = train(&profiles, TrainingParams::default()).expect("training succeeds");
        Engine::new(Arc::new(model), machine)
    }

    #[test]
    fn cache_hit_equals_cache_miss() {
        let e = engine();
        let id = e.kernels.keys().next().unwrap().clone();
        let cold = e.select(&id, 25.0).unwrap();
        let warm = e.select(&id, 25.0).unwrap();
        assert_eq!(cold, warm);
        let (hits, misses) = e.cache_counts();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn unknown_kernel_is_typed() {
        let e = engine();
        match e.select("no/such/kernel", 25.0) {
            Err(EngineError::UnknownKernel(id)) => assert_eq!(id, "no/such/kernel"),
            other => panic!("expected UnknownKernel, got {other:?}"),
        }
    }

    #[test]
    fn batch_preserves_request_order_and_matches_singles() {
        let e = engine();
        let ids: Vec<String> = e.kernels.keys().take(8).cloned().collect();
        let batch = e.select_batch(&ids, 30.0);
        assert_eq!(batch.len(), ids.len());
        for (id, got) in ids.iter().zip(&batch) {
            let single = e.select(id, 30.0).unwrap();
            assert_eq!(got.as_ref().unwrap(), &single, "order or value drifted for {id}");
        }
    }

    #[test]
    fn lru_eviction_is_bounded_and_recomputes_identically() {
        let e = engine().with_profile_capacity(2);
        let ids: Vec<String> = e.kernels.keys().take(3).cloned().collect();
        let first = e.select(&ids[0], 25.0).unwrap();
        e.select(&ids[1], 25.0).unwrap();
        e.select(&ids[2], 25.0).unwrap(); // ids[0] is now least recent: out
        assert_eq!(e.cached_profiles(), 2);

        // The evicted kernel recomputes — to the identical selection.
        let again = e.select(&ids[0], 25.0).unwrap();
        assert_eq!(first, again);
        let (hits, misses) = e.cache_counts();
        assert_eq!((hits, misses), (0, 4), "re-selecting an evicted kernel is a miss");
        assert_eq!(e.cached_profiles(), 2);
    }

    #[test]
    fn lru_refresh_protects_recently_used_entries() {
        let e = engine().with_profile_capacity(2);
        let ids: Vec<String> = e.kernels.keys().take(3).cloned().collect();
        e.select(&ids[0], 25.0).unwrap();
        e.select(&ids[1], 25.0).unwrap();
        e.select(&ids[0], 25.0).unwrap(); // refresh: ids[1] is now LRU
        e.select(&ids[2], 25.0).unwrap(); // evicts ids[1]
        let (hits, _) = e.cache_counts();
        assert_eq!(hits, 1);
        // ids[0] survived the eviction; selecting it again is a hit.
        e.select(&ids[0], 25.0).unwrap();
        let (hits, misses) = e.cache_counts();
        assert_eq!((hits, misses), (2, 3));
    }

    #[test]
    fn restart_without_journal_recomputes_value_equal_selections() {
        // A fresh engine over the same (seed, model) is exactly what a
        // server restart without `--journal` builds: a cold cache. The
        // recomputed selection must be value-equal to the warm one.
        let warm = engine();
        let id = warm.kernels.keys().next().unwrap().clone();
        warm.select(&id, 25.0).unwrap();
        let cached = warm.select(&id, 25.0).unwrap(); // warm-path answer

        let cold = engine();
        let recomputed = cold.select(&id, 25.0).unwrap();
        assert_eq!(cached, recomputed);
        assert_eq!(cold.cache_counts().1, 1, "the restarted engine had to recompute");
    }

    #[test]
    fn idem_memo_replays_identical_bytes() {
        let e = engine();
        let response = Response::Ran {
            kernel_id: "k".into(),
            iterations: 2,
            avg_power_w: 17.5,
            total_time_s: 0.25,
            config: acs_sim::Configuration::all()[0],
            tier: "model".into(),
        };
        assert!(e.idem_lookup(9).is_none());
        e.idem_store(9, &response);
        let replayed = e.idem_lookup(9).expect("stored key replays");
        assert_eq!(
            serde_json::to_string(&replayed).unwrap(),
            serde_json::to_string(&response).unwrap(),
            "a replayed response must re-serialize to identical bytes"
        );
    }

    #[test]
    fn idem_memo_is_bounded_lru() {
        let e = engine().with_idem_capacity(2);
        let resp = |n: u64| Response::Welcome { node_id: n, budget_w: 1.0 };
        e.idem_store(1, &resp(1));
        e.idem_store(2, &resp(2));
        assert!(e.idem_lookup(1).is_some()); // refresh key 1: key 2 is LRU
        e.idem_store(3, &resp(3));
        assert!(e.idem_lookup(2).is_none(), "LRU key evicted at capacity");
        assert!(e.idem_lookup(1).is_some());
        assert!(e.idem_lookup(3).is_some());
    }

    #[test]
    fn miss_hook_fires_once_per_inserted_kernel() {
        use std::sync::Mutex as StdMutex;
        let e = engine();
        let seen: Arc<StdMutex<Vec<String>>> = Arc::new(StdMutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        e.set_miss_hook(Box::new(move |id| sink.lock().unwrap().push(id.to_string())));
        let ids: Vec<String> = e.kernels.keys().take(2).cloned().collect();
        e.select(&ids[0], 25.0).unwrap();
        e.select(&ids[0], 25.0).unwrap(); // hit: no hook
        e.select(&ids[1], 25.0).unwrap();
        assert_eq!(*seen.lock().unwrap(), ids);
    }

    #[test]
    fn tighter_budget_never_raises_predicted_power() {
        let e = engine();
        let id = e.kernels.keys().next().unwrap().clone();
        let loose = e.select(&id, 60.0).unwrap();
        let tight = e.select(&id, 12.0).unwrap();
        assert!(tight.predicted_power_w <= loose.predicted_power_w + 1e-9);
    }
}
