//! The request executor: memoized online selection over a shared model.
//!
//! The cold path for a kernel is the paper's full online stage — two
//! sample-configuration runs, CART classification, and per-configuration
//! regression (Section III-C). The engine memoizes the resulting
//! [`PredictedProfile`] per kernel id, so repeat clients pay only a Pareto
//! frontier walk. Batches fan onto the workspace rayon pool with
//! index-ordered collection, so batch responses are deterministic.
//!
//! Determinism rule (DESIGN.md §11): a cache hit and a cache miss must
//! produce byte-identical selections. That holds because the profile is a
//! pure function of `(machine seed, kernel id, model)` — the cache changes
//! *when* work happens, never *what* is answered — and it is why
//! [`Selection`] carries no hit/miss flag; hit rates live in the metrics
//! snapshot only.

use crate::protocol::Selection;
use acs_core::{sample_config, PredictedProfile, Predictor, SamplePair, TrainedModel};
use acs_sim::{Device, KernelCharacteristics, Machine};
use parking_lot::Mutex;
use rayon::prelude::*;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Typed engine failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The kernel id is not in the suite.
    UnknownKernel(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownKernel(id) => {
                write!(f, "unknown kernel '{id}' (try `acs suite`)")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Shared, thread-safe selection engine.
pub struct Engine {
    model: Arc<TrainedModel>,
    machine: Machine,
    kernels: BTreeMap<String, KernelCharacteristics>,
    cache: Mutex<HashMap<String, Arc<PredictedProfile>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Engine {
    /// An engine answering for the full benchmark suite on `machine`.
    pub fn new(model: Arc<TrainedModel>, machine: Machine) -> Self {
        let kernels =
            acs_kernels::all_kernel_instances().into_iter().map(|k| (k.id(), k)).collect();
        Self {
            model,
            machine,
            kernels,
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The trained model the engine serves.
    pub fn model(&self) -> &Arc<TrainedModel> {
        &self.model
    }

    /// The kernel with this id, if it is in the suite.
    pub fn kernel(&self, id: &str) -> Option<&KernelCharacteristics> {
        self.kernels.get(id)
    }

    /// `(hits, misses)` of the profile cache since startup.
    pub fn cache_counts(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// The memoized predicted profile for a kernel; computed on first use
    /// (two sample runs + classify + regress), a map lookup afterwards.
    pub fn profile(&self, kernel_id: &str) -> Result<Arc<PredictedProfile>, EngineError> {
        if let Some(hit) = self.cache.lock().get(kernel_id) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(hit));
        }
        let kernel = self
            .kernels
            .get(kernel_id)
            .ok_or_else(|| EngineError::UnknownKernel(kernel_id.to_string()))?;
        // Compute outside the lock: concurrent misses for the same kernel
        // duplicate pure work but agree on the result bit-for-bit (the
        // profile is a function of seed + kernel + model only).
        let cpu = self.machine.run_iter(kernel, &sample_config(Device::Cpu), 0);
        let gpu = self.machine.run_iter(kernel, &sample_config(Device::Gpu), 1);
        let profile = Arc::new(Predictor::new(&self.model).predict(&SamplePair::new(cpu, gpu)));
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut cache = self.cache.lock();
        Ok(Arc::clone(cache.entry(kernel_id.to_string()).or_insert(profile)))
    }

    /// Select a configuration for one kernel under a budget.
    pub fn select(&self, kernel_id: &str, budget_w: f64) -> Result<Selection, EngineError> {
        let profile = self.profile(kernel_id)?;
        let config = profile.select(budget_w);
        let point = profile.point_for(&config);
        Ok(Selection {
            kernel_id: kernel_id.to_string(),
            cluster: profile.cluster,
            config,
            predicted_power_w: point.power_w,
            predicted_perf: point.perf,
            budget_w,
        })
    }

    /// Select for many kernels at once on the rayon pool. Results are
    /// collected in request order (index-ordered), so the response is
    /// independent of worker scheduling.
    pub fn select_batch(
        &self,
        kernel_ids: &[String],
        budget_w: f64,
    ) -> Vec<Result<Selection, EngineError>> {
        kernel_ids.par_iter().map(|id| self.select(id, budget_w)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acs_core::{train, KernelProfile, TrainingParams};

    fn engine() -> Engine {
        let machine = Machine::new(2014);
        let kernels = acs_kernels::all_kernel_instances();
        let profiles: Vec<KernelProfile> =
            kernels.iter().take(12).map(|k| KernelProfile::collect(&machine, k)).collect();
        let model = train(&profiles, TrainingParams::default()).expect("training succeeds");
        Engine::new(Arc::new(model), machine)
    }

    #[test]
    fn cache_hit_equals_cache_miss() {
        let e = engine();
        let id = e.kernels.keys().next().unwrap().clone();
        let cold = e.select(&id, 25.0).unwrap();
        let warm = e.select(&id, 25.0).unwrap();
        assert_eq!(cold, warm);
        let (hits, misses) = e.cache_counts();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn unknown_kernel_is_typed() {
        let e = engine();
        match e.select("no/such/kernel", 25.0) {
            Err(EngineError::UnknownKernel(id)) => assert_eq!(id, "no/such/kernel"),
            other => panic!("expected UnknownKernel, got {other:?}"),
        }
    }

    #[test]
    fn batch_preserves_request_order_and_matches_singles() {
        let e = engine();
        let ids: Vec<String> = e.kernels.keys().take(8).cloned().collect();
        let batch = e.select_batch(&ids, 30.0);
        assert_eq!(batch.len(), ids.len());
        for (id, got) in ids.iter().zip(&batch) {
            let single = e.select(id, 30.0).unwrap();
            assert_eq!(got.as_ref().unwrap(), &single, "order or value drifted for {id}");
        }
    }

    #[test]
    fn tighter_budget_never_raises_predicted_power() {
        let e = engine();
        let id = e.kernels.keys().next().unwrap().clone();
        let loose = e.select(&id, 60.0).unwrap();
        let tight = e.select(&id, 12.0).unwrap();
        assert!(tight.predicted_power_w <= loose.predicted_power_w + 1e-9);
    }
}
