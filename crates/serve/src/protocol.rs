//! The wire protocol: length-prefixed JSON frames.
//!
//! Every message is a 4-byte big-endian `u32` byte length followed by that
//! many bytes of UTF-8 JSON. The length prefix is validated against
//! [`MAX_FRAME_LEN`] *before* any allocation, truncated frames and invalid
//! UTF-8 surface as typed [`ProtocolError`]s, and nothing in this module
//! panics on hostile input.
//!
//! Responses are intentionally free of any field that depends on server
//! cache state or wall-clock time: a recorded request stream must replay to
//! a byte-identical response log (DESIGN.md §11), so `Selected` carries no
//! "cache hit" flag and latency lives only in the [`StatsSnapshot`], which
//! replay logs exclude.

use crate::metrics::StatsSnapshot;
use acs_sim::Configuration;
use serde::{Deserialize, Serialize};
use std::io::{ErrorKind, Read, Write};

/// Hard ceiling on a frame's payload length (1 MiB). A length prefix above
/// this is rejected before any buffer is allocated, so a hostile client
/// cannot make the server reserve gigabytes with four bytes.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// A client request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Handshake: ask for the session's node id and current power budget.
    Hello,
    /// Select a configuration for one kernel under the session's budget.
    Select {
        /// Kernel id (`benchmark/input/name`, as listed by `acs suite`).
        kernel_id: String,
        /// Optional service deadline in milliseconds. `Some(d)` lets the
        /// server shed the request with [`Response::ShedDeadline`] when it
        /// knows service cannot complete in time (a zero budget, or a
        /// brownout-tracked p99 above `d`). Absent (`null`, or omitted by
        /// pre-deadline clients) means the request is never shed.
        #[serde(default)]
        deadline_ms: Option<u64>,
        /// Priority class for load shedding (higher survives longer;
        /// 0 — the pre-priority default — is shed first). Only consulted
        /// when `deadline_ms` is set.
        #[serde(default)]
        priority: u8,
    },
    /// Select configurations for many kernels in one round trip; the
    /// server fans the batch onto its thread pool.
    Batch {
        /// Kernel ids to select for, answered in the same order.
        kernel_ids: Vec<String>,
        /// Optional service deadline in milliseconds (see `Select`).
        #[serde(default)]
        deadline_ms: Option<u64>,
        /// Priority class for load shedding (see `Select`).
        #[serde(default)]
        priority: u8,
    },
    /// Execute iterations of a kernel on the session's capped runtime.
    Run {
        /// Kernel id.
        kernel_id: String,
        /// Number of iterations to execute (clamped to at least 1).
        iterations: u64,
        /// Client-generated idempotency key. When present, the engine
        /// memoizes the successful response under this key, and a retry
        /// carrying the same key replays those exact bytes instead of
        /// executing again — exactly-once in effect for resilient
        /// clients. Absent (`null`, or omitted by pre-key clients) means
        /// every send executes.
        idem: Option<u64>,
        /// Optional service deadline in milliseconds (see `Select`).
        #[serde(default)]
        deadline_ms: Option<u64>,
        /// Priority class for load shedding (see `Select`).
        #[serde(default)]
        priority: u8,
    },
    /// Report this node's residual power headroom to the arbiter.
    Report {
        /// Residual watts under the node's current budget (negative when
        /// the node overshoots).
        residual_w: f64,
        /// Optional measured-feedback payload for the session's online
        /// adaptation layer. Absent (`null`, or omitted by pre-adapt
        /// clients) means the Report only feeds the arbiter, exactly as
        /// before — the adaptive path stays bit-identical to static.
        #[serde(default)]
        feedback: Option<ReportFeedback>,
    },
    /// Ask for a metrics snapshot.
    Stats,
    /// Close this session politely.
    Bye,
    /// Poison request: shut the whole server down.
    Shutdown,
}

impl Request {
    /// Short label for metrics bucketing.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Hello => "hello",
            Request::Select { .. } => "select",
            Request::Batch { .. } => "batch",
            Request::Run { .. } => "run",
            Request::Report { .. } => "report",
            Request::Stats => "stats",
            Request::Bye => "bye",
            Request::Shutdown => "shutdown",
        }
    }

    /// The request's shedding envelope: `Some((deadline_ms, priority))`
    /// for deadline-carrying work, `None` for everything else (which is
    /// never shed).
    pub fn deadline(&self) -> Option<(u64, u8)> {
        match *self {
            Request::Select { deadline_ms: Some(d), priority, .. }
            | Request::Batch { deadline_ms: Some(d), priority, .. }
            | Request::Run { deadline_ms: Some(d), priority, .. } => Some((d, priority)),
            _ => None,
        }
    }
}

/// Measured power/performance feedback attached to a `Report`, consumed by
/// the per-session [`acs_core::AdaptivePredictor`]. The server compares the
/// measurement against the static model's prediction for `config` and feeds
/// the ratios through the session's Kalman filters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportFeedback {
    /// Kernel the measurement is for.
    pub kernel_id: String,
    /// Configuration the measurement was taken under.
    pub config: Configuration,
    /// Measured mean power over the reported window, W.
    pub measured_power_w: f64,
    /// Measured performance over the reported window (iterations/s).
    pub measured_perf: f64,
}

/// One configuration selection, as returned for `Select` and `Batch`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Selection {
    /// Kernel the selection is for.
    pub kernel_id: String,
    /// Cluster the kernel was classified into.
    pub cluster: usize,
    /// The selected configuration.
    pub config: Configuration,
    /// Predicted power at that configuration, W.
    pub predicted_power_w: f64,
    /// Predicted performance at that configuration (iterations/s).
    pub predicted_perf: f64,
    /// The session budget the selection was made under, W.
    pub budget_w: f64,
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Handshake reply.
    Welcome {
        /// Server-assigned node id for this session.
        node_id: u64,
        /// The session's current power budget, W.
        budget_w: f64,
    },
    /// Reply to `Select`.
    Selected(Selection),
    /// Reply to `Batch`, selections in request order.
    BatchSelected {
        /// One selection per requested kernel id, in order.
        selections: Vec<Selection>,
    },
    /// Reply to `Run`.
    Ran {
        /// Kernel that ran.
        kernel_id: String,
        /// Iterations actually executed.
        iterations: u64,
        /// Mean measured power over those iterations, W.
        avg_power_w: f64,
        /// Total wall time over those iterations, s.
        total_time_s: f64,
        /// Configuration of the final iteration.
        config: Configuration,
        /// Degradation-ladder rung the kernel ended the request on.
        tier: String,
    },
    /// Reply to `Report`: the node's budget after the arbiter re-partitions.
    Budget {
        /// This node's new budget, W.
        budget_w: f64,
    },
    /// Reply to `Stats`. Boxed: the snapshot dwarfs every other variant,
    /// and serde is transparent to the box (same wire bytes).
    Stats(Box<StatsSnapshot>),
    /// Typed load shed: the request carried a `deadline_ms` the server
    /// knew it could not meet before starting service, so the work was
    /// dropped instead of served late. Clients should treat this as
    /// explicit backpressure, not an error.
    ShedDeadline {
        /// The deadline the request carried, ms.
        deadline_ms: u64,
        /// The priority class the request carried.
        priority: u8,
        /// The brownout level the server was at when it shed.
        brownout_level: u8,
    },
    /// Typed backpressure: the server (or a batch) is over its bound.
    Overloaded {
        /// Offered load (active sessions at admission, batch size for
        /// an oversized batch).
        load: u64,
        /// The configured bound that was exceeded.
        limit: u64,
    },
    /// Typed request failure (unknown kernel, malformed frame, ...).
    Error {
        /// Stable machine-readable code.
        code: String,
        /// Human-readable detail.
        detail: String,
    },
    /// Reply to `Bye`.
    Bye,
    /// Reply to `Shutdown`.
    ShuttingDown,
}

/// Typed wire-protocol failures. Never a panic.
#[derive(Debug)]
pub enum ProtocolError {
    /// Underlying socket/stream failure.
    Io(std::io::Error),
    /// The stream ended inside a frame.
    Truncated {
        /// Bytes the frame promised.
        expected: usize,
        /// Bytes actually read before EOF.
        got: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// The claimed payload length.
        len: usize,
        /// The configured maximum.
        max: usize,
    },
    /// The payload is not valid UTF-8.
    InvalidUtf8,
    /// The payload is valid UTF-8 but not a valid message.
    Malformed(String),
}

impl ProtocolError {
    /// Stable machine-readable code for `Response::Error`.
    pub fn code(&self) -> &'static str {
        match self {
            ProtocolError::Io(_) => "io",
            ProtocolError::Truncated { .. } => "truncated",
            ProtocolError::Oversized { .. } => "oversized",
            ProtocolError::InvalidUtf8 => "invalid-utf8",
            ProtocolError::Malformed(_) => "malformed",
        }
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "i/o failure: {e}"),
            ProtocolError::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} bytes, got {got}")
            }
            ProtocolError::Oversized { len, max } => {
                write!(f, "oversized frame: length prefix {len} exceeds maximum {max}")
            }
            ProtocolError::InvalidUtf8 => write!(f, "frame payload is not valid UTF-8"),
            ProtocolError::Malformed(m) => write!(f, "malformed message: {m}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// Outcome of a non-blocking frame read.
#[derive(Debug)]
pub enum ReadOutcome<T> {
    /// A complete frame arrived.
    Frame(T),
    /// The peer closed the stream cleanly (EOF between frames).
    Eof,
    /// A read timeout fired before the first byte of a frame; nothing was
    /// consumed, so the caller may poll its shutdown flag and retry.
    Idle,
}

/// Serialize `msg` and write it as one length-prefixed frame.
pub fn write_frame<W: Write, T: Serialize>(w: &mut W, msg: &T) -> Result<(), ProtocolError> {
    let body = serde_json::to_string(msg).map_err(|e| ProtocolError::Malformed(e.to_string()))?;
    let bytes = body.as_bytes();
    if bytes.len() > MAX_FRAME_LEN {
        return Err(ProtocolError::Oversized { len: bytes.len(), max: MAX_FRAME_LEN });
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()?;
    Ok(())
}

/// True for the error kinds a read timeout surfaces as.
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Read exactly `buf.len()` bytes, treating timeouts as retryable only
/// once at least one byte has arrived (a frame, once started, is always
/// finished or declared truncated). Returns the byte count read when EOF
/// arrives early, `buf.len()` on success.
fn read_full<R: Read>(r: &mut R, buf: &mut [u8], mut got: usize) -> Result<usize, ProtocolError> {
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => return Ok(got),
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) && got > 0 => {}
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    Ok(got)
}

/// Read one frame, distinguishing clean EOF and idle timeouts from errors.
///
/// On a stream with a read timeout, a timeout before the first byte of the
/// length prefix returns [`ReadOutcome::Idle`]; once a frame has started,
/// timeouts are retried until the frame completes or the stream ends
/// (→ [`ProtocolError::Truncated`]).
pub fn read_frame<R: Read, T: Deserialize>(r: &mut R) -> Result<ReadOutcome<T>, ProtocolError> {
    let mut header = [0u8; 4];
    let mut got = 0usize;
    // The first byte decides between Eof, Idle, and an in-flight frame.
    while got == 0 {
        match r.read(&mut header) {
            Ok(0) => return Ok(ReadOutcome::Eof),
            Ok(n) => got = n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => return Ok(ReadOutcome::Idle),
            Err(e) => return Err(ProtocolError::Io(e)),
        }
    }
    let got = read_full(r, &mut header, got)?;
    if got < header.len() {
        return Err(ProtocolError::Truncated { expected: header.len(), got });
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_LEN {
        return Err(ProtocolError::Oversized { len, max: MAX_FRAME_LEN });
    }
    let mut body = vec![0u8; len];
    let got = read_full(r, &mut body, 0)?;
    if got < len {
        return Err(ProtocolError::Truncated { expected: len, got });
    }
    let text = std::str::from_utf8(&body).map_err(|_| ProtocolError::InvalidUtf8)?;
    let msg = serde_json::from_str(text).map_err(|e| ProtocolError::Malformed(e.to_string()))?;
    Ok(ReadOutcome::Frame(msg))
}

/// Blocking convenience: read one frame, mapping EOF to `None`.
///
/// Intended for streams *without* a read timeout (clients, tests); an idle
/// timeout is reported as an I/O error rather than silently retried.
pub fn read_frame_blocking<R: Read, T: Deserialize>(r: &mut R) -> Result<Option<T>, ProtocolError> {
    match read_frame(r)? {
        ReadOutcome::Frame(t) => Ok(Some(t)),
        ReadOutcome::Eof => Ok(None),
        ReadOutcome::Idle => Err(ProtocolError::Io(std::io::Error::new(
            ErrorKind::TimedOut,
            "read timed out waiting for a frame",
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(msg: &T) {
        let mut buf = Vec::new();
        write_frame(&mut buf, msg).unwrap();
        let back: T = read_frame_blocking(&mut Cursor::new(&buf)).unwrap().unwrap();
        assert_eq!(&back, msg);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip(&Request::Hello);
        roundtrip(&Request::Select {
            kernel_id: "LU/Small/lud".into(),
            deadline_ms: None,
            priority: 0,
        });
        roundtrip(&Request::Select {
            kernel_id: "LU/Small/lud".into(),
            deadline_ms: Some(25),
            priority: 200,
        });
        roundtrip(&Request::Batch {
            kernel_ids: vec!["a".into(), "b".into()],
            deadline_ms: None,
            priority: 0,
        });
        roundtrip(&Request::Run {
            kernel_id: "x".into(),
            iterations: 5,
            idem: None,
            deadline_ms: None,
            priority: 0,
        });
        roundtrip(&Request::Run {
            kernel_id: "x".into(),
            iterations: 5,
            idem: Some(42),
            deadline_ms: Some(10),
            priority: 1,
        });
        roundtrip(&Request::Report { residual_w: -1.25, feedback: None });
        roundtrip(&Request::Report {
            residual_w: 3.5,
            feedback: Some(ReportFeedback {
                kernel_id: "LU/Small/lud".into(),
                config: Configuration::all()[0],
                measured_power_w: 41.5,
                measured_perf: 12.25,
            }),
        });
        roundtrip(&Request::Stats);
        roundtrip(&Request::Bye);
        roundtrip(&Request::Shutdown);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip(&Response::Welcome { node_id: 3, budget_w: 40.0 });
        roundtrip(&Response::Overloaded { load: 9, limit: 8 });
        roundtrip(&Response::ShedDeadline { deadline_ms: 5, priority: 3, brownout_level: 2 });
        roundtrip(&Response::Error { code: "oversized".into(), detail: "big".into() });
        roundtrip(&Response::Bye);
        roundtrip(&Response::ShuttingDown);
    }

    #[test]
    fn pre_key_run_frames_parse_with_no_idem() {
        // Clients older than the idempotency key omit the field entirely;
        // the decoder must treat that as `idem: None`, not a malformed
        // frame, so old loadgen recordings stay replayable.
        let json = r#"{"Run":{"kernel_id":"x","iterations":2}}"#;
        let mut buf = (json.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(json.as_bytes());
        let req: Request = read_frame_blocking(&mut Cursor::new(&buf)).unwrap().unwrap();
        assert_eq!(
            req,
            Request::Run {
                kernel_id: "x".into(),
                iterations: 2,
                idem: None,
                deadline_ms: None,
                priority: 0,
            }
        );
    }

    #[test]
    fn pre_deadline_frames_parse_with_no_deadline_and_zero_priority() {
        // Clients older than the shedding layer omit both fields; the
        // decoder must default to "no deadline, lowest priority" so old
        // recordings replay with shedding permanently inert.
        for (json, kind) in [
            (r#"{"Select":{"kernel_id":"x"}}"#, "select"),
            (r#"{"Batch":{"kernel_ids":["x","y"]}}"#, "batch"),
            (r#"{"Run":{"kernel_id":"x","iterations":1,"idem":7}}"#, "run"),
        ] {
            let mut buf = (json.len() as u32).to_be_bytes().to_vec();
            buf.extend_from_slice(json.as_bytes());
            let req: Request = read_frame_blocking(&mut Cursor::new(&buf)).unwrap().unwrap();
            assert_eq!(req.kind(), kind);
            assert_eq!(req.deadline(), None, "pre-deadline {kind} frames are never shed");
        }
    }

    #[test]
    fn pre_adapt_report_frames_parse_with_no_feedback() {
        // Clients older than the adaptation layer omit the feedback field
        // entirely; the decoder must treat that as `feedback: None`, not a
        // malformed frame, so old loadgen recordings stay replayable.
        let json = r#"{"Report":{"residual_w":2.5}}"#;
        let mut buf = (json.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(json.as_bytes());
        let req: Request = read_frame_blocking(&mut Cursor::new(&buf)).unwrap().unwrap();
        assert_eq!(req, Request::Report { residual_w: 2.5, feedback: None });
    }

    #[test]
    fn eof_between_frames_is_clean() {
        let empty: Vec<u8> = Vec::new();
        match read_frame::<_, Request>(&mut Cursor::new(&empty)).unwrap() {
            ReadOutcome::Eof => {}
            other => panic!("expected Eof, got {other:?}"),
        }
    }

    #[test]
    fn truncated_header_and_body_are_typed() {
        // 2 of 4 header bytes.
        let err = read_frame::<_, Request>(&mut Cursor::new(&[0u8, 0][..])).unwrap_err();
        assert!(matches!(err, ProtocolError::Truncated { expected: 4, got: 2 }));
        // Header promises 10 bytes, body delivers 3.
        let mut buf = 10u32.to_be_bytes().to_vec();
        buf.extend_from_slice(b"abc");
        let err = read_frame::<_, Request>(&mut Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, ProtocolError::Truncated { expected: 10, got: 3 }));
    }

    #[test]
    fn oversized_prefix_rejected_before_allocation() {
        let buf = (u32::MAX).to_be_bytes();
        let err = read_frame::<_, Request>(&mut Cursor::new(&buf[..])).unwrap_err();
        match err {
            ProtocolError::Oversized { len, max } => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, MAX_FRAME_LEN);
            }
            other => panic!("expected Oversized, got {other}"),
        }
    }

    #[test]
    fn invalid_utf8_and_bad_json_are_typed() {
        let mut buf = 2u32.to_be_bytes().to_vec();
        buf.extend_from_slice(&[0xff, 0xfe]);
        let err = read_frame::<_, Request>(&mut Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, ProtocolError::InvalidUtf8));

        let mut buf = 4u32.to_be_bytes().to_vec();
        buf.extend_from_slice(b"{{{{");
        let err = read_frame::<_, Request>(&mut Cursor::new(&buf)).unwrap_err();
        assert!(matches!(err, ProtocolError::Malformed(_)));
    }

    #[test]
    fn error_codes_are_stable() {
        assert_eq!(ProtocolError::InvalidUtf8.code(), "invalid-utf8");
        assert_eq!(ProtocolError::Oversized { len: 1, max: 0 }.code(), "oversized");
        assert_eq!(ProtocolError::Truncated { expected: 4, got: 0 }.code(), "truncated");
        assert_eq!(ProtocolError::Malformed("x".into()).code(), "malformed");
    }
}
