//! Fleet power leases: the coordinator's lease table and the shard's
//! degraded-mode state machine.
//!
//! The per-process [`Arbiter`](crate::arbiter::Arbiter) keeps one shard's
//! sessions under one cap. This module scales that invariant to a fleet:
//! a **coordinator** owns the global budget and leases time-bounded
//! slices of it to `acs serve` shards; each shard runs its arbiter
//! *inside* its lease ([`Arbiter::set_global_cap`] is the binding).
//!
//! ## Safety model
//!
//! The conservation target is asymmetric: the fleet must **never exceed**
//! the global cap, even when the coordinator is dead or a shard is
//! partitioned, while full utilization is only required at quiescence.
//! Three rules deliver that:
//!
//! 1. **Commit-on-contact.** A lease's *committed* budget — the number
//!    the shard was actually told — changes only in responses to that
//!    shard's own requests. Rebalances move *targets*; a shard ramps
//!    toward its target at its next renewal, taking at most the watts
//!    other shards have already renewed down from. The sum of committed
//!    budgets therefore never exceeds the pool, and converges to it
//!    exactly (largest-remainder fold, [`fold_exact_sum`]) once every
//!    live shard has renewed after a membership change.
//! 2. **Encumbrance at the floor.** A lease that misses its renewals
//!    expires, but its watts are not fully reclaimed: `min(floor,
//!    committed)` stays *encumbered* — reserved for the silent shard —
//!    because the shard's own degraded mode clamps to exactly that value.
//!    Only the watts above the floor return to the pool. A partitioned
//!    shard and the coordinator therefore agree on the shard's worst-case
//!    draw without communicating.
//! 3. **Epoch fencing.** Every applied operation bumps the table epoch;
//!    a lease records the epoch of its last grant/re-adoption/expiry as
//!    its *fence*. A renewal presenting an epoch older than the fence is
//!    rejected — the shard it came from has provably missed an expiry and
//!    must re-lease (which re-adopts its existing entry rather than
//!    double-granting).
//!
//! Shard side, [`ShardLease`] mirrors rule 2: on every missed renewal the
//! local cap halves toward `min(floor, last grant)`, and when the lease's
//! TTL passes by the shard's own clock it clamps there. The local cap is
//! monotone non-increasing between grants and never exceeds the last
//! granted budget — the invariant the fleet e2e asserts per shard.
//!
//! Time is **logical ticks** (the coordinator maps them to wall-clock
//! milliseconds via its `tick_ms`). Expirations are *recomputed* during
//! replay, never journaled: [`replay_coordinator`] advances the rebuilt
//! table to each entry's recorded tick before applying it, so the exact
//! interleaving of expiries and operations is reproduced, then verifies
//! the recorded post-op epoch ([`JournalError::LeaseDivergence`] when
//! history cannot be trusted).

use crate::arbiter::{fold_exact_sum, ArbiterPolicy};
use crate::journal::JournalError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Watt-scale epsilon for admission checks (same scale as the arbiter's
/// reshuffle epsilon).
pub const LEASE_EPS_W: f64 = 1e-9;

/// One lease's coordinator-side state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeaseState {
    /// The shard holding the lease (stable across re-adoptions).
    pub shard_id: u64,
    /// Budget actually communicated to the shard, W. For an expired
    /// (encumbered) lease this is the reserve held for the silent shard.
    pub committed_w: f64,
    /// The shard's last reported demand, W (drives demand-proportional
    /// targets).
    pub demand_w: f64,
    /// Logical tick at which the lease expires unless renewed.
    pub expires_tick: u64,
    /// Table epoch of the last grant/re-adoption/expiry — renewals
    /// presenting an older epoch are fenced off.
    pub fence: u64,
    /// Live (renewable) vs. expired-and-encumbered.
    pub live: bool,
    /// The tick the lease expired at (its own `expires_tick`, **not** the
    /// tick the expiry was detected at — detection depends on when
    /// `advance_to` runs, which replay does not reproduce). Zero while
    /// live. Drives health-checked eviction.
    pub expired_tick: u64,
}

/// Typed lease-table failures.
#[derive(Debug, Clone, PartialEq)]
pub enum LeaseError {
    /// The pool cannot fit another floor-sized lease right now; the shard
    /// should retry after the next renewal round frees ramp-down watts.
    Denied {
        /// The minimum grant (the floor), W.
        needed_w: f64,
        /// What the pool could actually offer, W.
        available_w: f64,
    },
    /// No such lease id.
    UnknownLease {
        /// The offending id.
        lease_id: u64,
    },
    /// The lease expired; the shard must re-lease (re-adopt).
    Expired {
        /// The expired lease.
        lease_id: u64,
    },
    /// The renewal's epoch predates the lease's fence: the shard missed
    /// an expiry and is operating on stale state.
    Fenced {
        /// The fenced lease.
        lease_id: u64,
        /// The fence the renewal had to clear.
        fence: u64,
        /// The epoch the renewal presented.
        presented: u64,
    },
}

impl LeaseError {
    /// Stable machine-readable code for [`CoordResponse::Rejected`].
    pub fn code(&self) -> &'static str {
        match self {
            LeaseError::Denied { .. } => "denied",
            LeaseError::UnknownLease { .. } => "unknown-lease",
            LeaseError::Expired { .. } => "expired",
            LeaseError::Fenced { .. } => "fenced",
        }
    }
}

impl std::fmt::Display for LeaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LeaseError::Denied { needed_w, available_w } => {
                write!(f, "grant denied: pool offers {available_w} W, floor is {needed_w} W")
            }
            LeaseError::UnknownLease { lease_id } => write!(f, "unknown lease {lease_id}"),
            LeaseError::Expired { lease_id } => {
                write!(f, "lease {lease_id} expired; re-lease to re-adopt")
            }
            LeaseError::Fenced { lease_id, fence, presented } => {
                write!(f, "lease {lease_id} fenced: presented epoch {presented}, fence is {fence}")
            }
        }
    }
}

impl std::error::Error for LeaseError {}

/// What a successful grant or renewal tells the shard.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GrantOutcome {
    /// The lease id (stable across re-adoptions of the same shard).
    pub lease_id: u64,
    /// The shard id (assigned on first grant when the shard has none).
    pub shard_id: u64,
    /// Table epoch after the operation — present this on the next renewal.
    pub epoch: u64,
    /// The committed budget, W.
    pub budget_w: f64,
    /// Logical tick at which the lease expires unless renewed.
    pub expires_tick: u64,
}

/// The coordinator's lease table. Pure state machine — no I/O, no clock —
/// so the conservation proptests can drive it through arbitrary
/// interleavings.
#[derive(Debug)]
pub struct LeaseTable {
    global_cap_w: f64,
    policy: ArbiterPolicy,
    ttl_ticks: u64,
    floor_w: f64,
    evict_after_ticks: u64,
    tick: u64,
    epoch: u64,
    next_lease: u64,
    leases: BTreeMap<u64, LeaseState>,
    grants: u64,
    renews: u64,
    expirations: u64,
    revocations: u64,
    evictions: u64,
}

impl LeaseTable {
    /// A table over a positive cap with `floor_w < global_cap_w` and a
    /// TTL of at least one tick.
    pub fn new(global_cap_w: f64, policy: ArbiterPolicy, ttl_ticks: u64, floor_w: f64) -> Self {
        assert!(global_cap_w > 0.0, "global cap must be positive");
        assert!(ttl_ticks >= 1, "a lease must live at least one tick");
        assert!(
            floor_w > 0.0 && floor_w < global_cap_w,
            "floor must be positive and below the cap"
        );
        Self {
            global_cap_w,
            policy,
            ttl_ticks,
            floor_w,
            evict_after_ticks: 0,
            tick: 0,
            epoch: 0,
            next_lease: 1,
            leases: BTreeMap::new(),
            grants: 0,
            renews: 0,
            expirations: 0,
            revocations: 0,
            evictions: 0,
        }
    }

    /// Enable health-checked eviction: an expired (encumbered) lease whose
    /// shard stays silent for `ticks` more logical ticks past its expiry
    /// is removed entirely, returning its reserve to the pool — the
    /// operator's [`Self::revoke`] automated. `0` (the default) disables
    /// eviction and keeps the floor-parked-forever semantics. Eviction is
    /// a pure function of the logical clock, so replay reproduces it with
    /// no journal entry — as long as the horizon matches
    /// ([`replay_coordinator`] takes it as a parameter).
    pub fn set_evict_after_ticks(&mut self, ticks: u64) {
        self.evict_after_ticks = ticks;
    }

    /// The eviction horizon in ticks (0 = eviction disabled).
    pub fn evict_after_ticks(&self) -> u64 {
        self.evict_after_ticks
    }

    /// Lifetime health-check evictions.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Current logical tick.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Monotonic epoch, bumped by every applied operation and every expiry.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The global cap, W.
    pub fn global_cap_w(&self) -> f64 {
        self.global_cap_w
    }

    /// The degraded-mode floor, W.
    pub fn floor_w(&self) -> f64 {
        self.floor_w
    }

    /// Lease TTL in ticks.
    pub fn ttl_ticks(&self) -> u64 {
        self.ttl_ticks
    }

    /// The lease id the next fresh grant will receive.
    pub fn next_lease(&self) -> u64 {
        self.next_lease
    }

    /// Lifetime grant count (fresh grants and re-adoptions).
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Lifetime accepted-renewal count.
    pub fn renews(&self) -> u64 {
        self.renews
    }

    /// Lifetime expiry count.
    pub fn expirations(&self) -> u64 {
        self.expirations
    }

    /// Lifetime revocation count.
    pub fn revocations(&self) -> u64 {
        self.revocations
    }

    /// One lease's state.
    pub fn lease(&self, lease_id: u64) -> Option<&LeaseState> {
        self.leases.get(&lease_id)
    }

    /// All leases, ascending by id.
    pub fn snapshot(&self) -> Vec<(u64, LeaseState)> {
        self.leases.iter().map(|(id, l)| (*id, *l)).collect()
    }

    /// Ids of live (renewable) leases, ascending.
    pub fn live_ids(&self) -> Vec<u64> {
        self.leases.iter().filter(|(_, l)| l.live).map(|(id, _)| *id).collect()
    }

    /// Ids of expired-and-encumbered leases, ascending.
    pub fn encumbered_ids(&self) -> Vec<u64> {
        self.leases.iter().filter(|(_, l)| !l.live).map(|(id, _)| *id).collect()
    }

    /// Sum of live committed budgets, W.
    pub fn live_committed_w(&self) -> f64 {
        self.leases.values().filter(|l| l.live).map(|l| l.committed_w).sum()
    }

    /// Sum of encumbered reserves, W.
    pub fn encumbered_w(&self) -> f64 {
        self.leases.values().filter(|l| !l.live).map(|l| l.committed_w).sum()
    }

    /// Everything the fleet could be drawing per this table, W.
    pub fn fleet_committed_w(&self) -> f64 {
        self.live_committed_w() + self.encumbered_w()
    }

    /// Watts available to live leases: the cap minus encumbered reserves.
    pub fn pool_w(&self) -> f64 {
        self.global_cap_w - self.encumbered_w()
    }

    /// How far the live commitments exceed the pool, W — the conservation
    /// gate; must be exactly zero at all times.
    pub fn overshoot_w(&self) -> f64 {
        (self.live_committed_w() - self.pool_w()).max(0.0)
    }

    /// Advance logical time, processing overdue expiries and (when the
    /// horizon is enabled) evictions as one merged event stream ordered
    /// by `(event_tick, lease_id)` — an expiry's event tick is the
    /// lease's `expires_tick`, an eviction's is `expired_tick +
    /// evict_after_ticks`, both pure functions of lease state, so live
    /// and replay bump the epoch in the same order no matter how the
    /// intermediate clock advances differ. Each expiry fences the lease
    /// and shrinks its commitment to the encumbered reserve `min(floor,
    /// committed)`; each eviction removes the lease entirely, returning
    /// the reserve to the pool. Returns the expired ids.
    pub fn advance_to(&mut self, tick: u64) -> Vec<u64> {
        if tick > self.tick {
            self.tick = tick;
        }
        let mut expired = Vec::new();
        loop {
            // Earliest due event; recomputed each round because an expiry
            // inside this same call can schedule the lease's eviction.
            let mut next: Option<(u64, u64, bool)> = None;
            for (id, l) in &self.leases {
                let event = if l.live && l.expires_tick <= self.tick {
                    Some((l.expires_tick, *id, false))
                } else if !l.live
                    && self.evict_after_ticks > 0
                    && l.expired_tick.saturating_add(self.evict_after_ticks) <= self.tick
                {
                    Some((l.expired_tick + self.evict_after_ticks, *id, true))
                } else {
                    None
                };
                if let Some(e) = event {
                    if next.is_none_or(|n| e < n) {
                        next = Some(e);
                    }
                }
            }
            let Some((_, id, evict)) = next else { break };
            self.epoch += 1;
            if evict {
                self.evictions += 1;
                self.leases.remove(&id);
            } else {
                self.expirations += 1;
                let lease = self.leases.get_mut(&id).expect("selected above");
                lease.live = false;
                lease.committed_w = lease.committed_w.min(self.floor_w);
                lease.fence = self.epoch;
                lease.expired_tick = lease.expires_tick;
                expired.push(id);
            }
        }
        expired
    }

    /// Target shares for the current live set: the pool split by the
    /// policy (equal, or half floor + demand-proportional), folded so the
    /// targets sum to the pool exactly. Aligned with [`Self::live_ids`].
    fn targets(&self, live_ids: &[u64]) -> Vec<f64> {
        let n = live_ids.len();
        if n == 0 {
            return Vec::new();
        }
        let pool = self.pool_w();
        let mut targets = match self.policy {
            ArbiterPolicy::EqualShare => vec![pool / n as f64; n],
            ArbiterPolicy::DemandProportional => {
                let floor = 0.5 * pool / n as f64;
                let extra = 0.5 * pool;
                let demands: Vec<f64> =
                    live_ids.iter().map(|id| self.leases[id].demand_w).collect();
                let total: f64 = demands.iter().sum();
                if total <= LEASE_EPS_W {
                    vec![floor + extra / n as f64; n]
                } else {
                    demands.iter().map(|d| floor + extra * d / total).collect()
                }
            }
        };
        fold_exact_sum(pool, &mut targets);
        targets
    }

    /// Commit-on-contact: move `lease_id` toward its target, taking at
    /// most the watts currently free (pool minus live commitments), then
    /// clamp any floating-point overshoot back onto this lease so the
    /// live sum never exceeds the pool.
    fn settle(&mut self, lease_id: u64) {
        let live_ids = self.live_ids();
        let Some(pos) = live_ids.iter().position(|&id| id == lease_id) else {
            return;
        };
        let target = self.targets(&live_ids)[pos];
        let pool = self.pool_w();
        let free = (pool - self.live_committed_w()).max(0.0);
        let lease = self.leases.get_mut(&lease_id).expect("live lease");
        lease.committed_w = target.min(lease.committed_w + free);
        for _ in 0..4 {
            let over = self.live_committed_w() - self.pool_w();
            if over > 0.0 {
                self.leases.get_mut(&lease_id).expect("live lease").committed_w -= over;
            } else {
                break;
            }
        }
        debug_assert!(
            self.live_committed_w() <= self.pool_w(),
            "live commitments {} exceed pool {}",
            self.live_committed_w(),
            self.pool_w()
        );
    }

    /// Grant a lease. A known `shard_id` with an existing lease (live or
    /// encumbered) is **re-adopted** — same lease id, commitment resumed
    /// from where it stood, fresh fence and TTL — never double-granted.
    /// A fresh shard is admitted when its *steady-state target* clears
    /// the floor; its initial commitment is `min(target, free)` — often
    /// zero right after a membership change — and it ramps toward its
    /// target as the incumbents renew down (commit-on-contact). If even
    /// the steady-state target cannot reach the floor, the grant is
    /// denied without mutating the table (denials are not journaled, so
    /// they must leave no trace).
    pub fn grant(
        &mut self,
        shard_id: Option<u64>,
        demand_w: f64,
    ) -> Result<GrantOutcome, LeaseError> {
        let demand_w = if demand_w.is_finite() { demand_w.max(0.0) } else { 0.0 };
        if let Some(sid) = shard_id {
            let existing = self.leases.iter().find(|(_, l)| l.shard_id == sid).map(|(id, _)| *id);
            if let Some(id) = existing {
                self.epoch += 1;
                self.grants += 1;
                let expires = self.tick + self.ttl_ticks;
                let (epoch, tick) = (self.epoch, expires);
                {
                    let lease = self.leases.get_mut(&id).expect("found above");
                    lease.live = true;
                    lease.demand_w = demand_w;
                    lease.expires_tick = tick;
                    lease.fence = epoch;
                    lease.expired_tick = 0;
                }
                self.settle(id);
                let lease = &self.leases[&id];
                return Ok(GrantOutcome {
                    lease_id: id,
                    shard_id: sid,
                    epoch,
                    budget_w: lease.committed_w,
                    expires_tick: tick,
                });
            }
        }
        // Fresh grant: admission-check before mutating anything.
        let live_ids = self.live_ids();
        let n_new = live_ids.len() + 1;
        let pool = self.pool_w();
        let target_new = match self.policy {
            ArbiterPolicy::EqualShare => pool / n_new as f64,
            ArbiterPolicy::DemandProportional => {
                let floor = 0.5 * pool / n_new as f64;
                let extra = 0.5 * pool;
                let total: f64 =
                    live_ids.iter().map(|id| self.leases[id].demand_w).sum::<f64>() + demand_w;
                if total <= LEASE_EPS_W {
                    floor + extra / n_new as f64
                } else {
                    floor + extra * demand_w / total
                }
            }
        };
        if target_new + LEASE_EPS_W < self.floor_w {
            return Err(LeaseError::Denied {
                needed_w: self.floor_w,
                available_w: target_new.max(0.0),
            });
        }
        self.epoch += 1;
        self.grants += 1;
        let id = self.next_lease;
        self.next_lease += 1;
        let sid = shard_id.unwrap_or(id);
        let expires = self.tick + self.ttl_ticks;
        self.leases.insert(
            id,
            LeaseState {
                shard_id: sid,
                committed_w: 0.0,
                demand_w,
                expires_tick: expires,
                fence: self.epoch,
                live: true,
                expired_tick: 0,
            },
        );
        self.settle(id);
        let lease = &self.leases[&id];
        Ok(GrantOutcome {
            lease_id: id,
            shard_id: sid,
            epoch: self.epoch,
            budget_w: lease.committed_w,
            expires_tick: expires,
        })
    }

    /// Renew a live lease. The presented epoch must clear the lease's
    /// fence; an expired lease rejects with [`LeaseError::Expired`] so
    /// the shard re-leases (re-adopts) instead.
    pub fn renew(
        &mut self,
        lease_id: u64,
        epoch: u64,
        demand_w: f64,
    ) -> Result<GrantOutcome, LeaseError> {
        let lease = self.leases.get(&lease_id).ok_or(LeaseError::UnknownLease { lease_id })?;
        if !lease.live {
            return Err(LeaseError::Expired { lease_id });
        }
        if epoch < lease.fence {
            return Err(LeaseError::Fenced { lease_id, fence: lease.fence, presented: epoch });
        }
        Ok(self.renew_unchecked(lease_id, demand_w).expect("lease checked live above"))
    }

    /// Apply an accepted renewal. Shared by [`Self::renew`] (after
    /// fencing) and [`replay_coordinator`] (which replays only renewals
    /// that were accepted live, so fencing must not re-run).
    fn renew_unchecked(&mut self, lease_id: u64, demand_w: f64) -> Option<GrantOutcome> {
        let demand_w = if demand_w.is_finite() { demand_w.max(0.0) } else { 0.0 };
        if !self.leases.get(&lease_id)?.live {
            return None;
        }
        self.epoch += 1;
        self.renews += 1;
        let expires = self.tick + self.ttl_ticks;
        {
            let lease = self.leases.get_mut(&lease_id).expect("checked above");
            lease.demand_w = demand_w;
            lease.expires_tick = expires;
        }
        self.settle(lease_id);
        let lease = &self.leases[&lease_id];
        Some(GrantOutcome {
            lease_id,
            shard_id: lease.shard_id,
            epoch: self.epoch,
            budget_w: lease.committed_w,
            expires_tick: expires,
        })
    }

    /// A shard's clean departure: the lease (and any encumbrance) is
    /// removed entirely; its watts return to the pool for the next
    /// renewal round.
    pub fn release(&mut self, lease_id: u64) -> Result<(), LeaseError> {
        if self.leases.remove(&lease_id).is_none() {
            return Err(LeaseError::UnknownLease { lease_id });
        }
        self.epoch += 1;
        Ok(())
    }

    /// Operator-forced removal of a lease known to be dead (e.g. the
    /// shard's host is confirmed down) — frees the encumbered reserve
    /// that expiry alone keeps holding.
    pub fn revoke(&mut self, lease_id: u64) -> Result<(), LeaseError> {
        if self.leases.remove(&lease_id).is_none() {
            return Err(LeaseError::UnknownLease { lease_id });
        }
        self.epoch += 1;
        self.revocations += 1;
        Ok(())
    }
}

/// A coordinator-to-shard wire request (length-prefixed JSON frames, the
/// same transport as [`Request`](crate::protocol::Request)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CoordRequest {
    /// Acquire (or re-adopt) a lease.
    Lease {
        /// The shard's remembered id; `None` on first contact, after
        /// which the coordinator assigns one.
        shard_id: Option<u64>,
        /// The shard's current demand, W.
        demand_w: f64,
    },
    /// Renew a live lease.
    Renew {
        /// The lease to renew.
        lease_id: u64,
        /// The epoch from the last grant/renewal (fencing token).
        epoch: u64,
        /// Updated demand, W.
        demand_w: f64,
    },
    /// Clean departure: drop the lease and free its watts.
    Release {
        /// The lease to release.
        lease_id: u64,
    },
    /// Operator-forced removal of a lease known to be dead — frees the
    /// encumbered reserve that expiry alone keeps holding.
    Revoke {
        /// The lease to revoke.
        lease_id: u64,
    },
    /// Ask for a coordinator metrics snapshot.
    Stats,
    /// Shut the coordinator down.
    Shutdown,
}

impl CoordRequest {
    /// Short label for metrics bucketing.
    pub fn kind(&self) -> &'static str {
        match self {
            CoordRequest::Lease { .. } => "lease",
            CoordRequest::Renew { .. } => "renew",
            CoordRequest::Release { .. } => "release",
            CoordRequest::Revoke { .. } => "revoke",
            CoordRequest::Stats => "stats",
            CoordRequest::Shutdown => "shutdown",
        }
    }
}

/// Coordinator metrics snapshot (`CoordRequest::Stats` reply).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoordStats {
    /// Current logical tick.
    pub tick: u64,
    /// Current table epoch.
    pub epoch: u64,
    /// The global cap, W.
    pub global_cap_w: f64,
    /// The degraded-mode floor, W.
    pub floor_w: f64,
    /// Live (renewable) leases.
    pub live_leases: u64,
    /// Expired-and-encumbered leases.
    pub encumbered_leases: u64,
    /// Sum of live committed budgets, W.
    pub live_committed_w: f64,
    /// Sum of encumbered reserves, W.
    pub encumbered_w: f64,
    /// Watts available to live leases.
    pub pool_w: f64,
    /// Conservation gate: live commitments above the pool (must be 0).
    pub overshoot_w: f64,
    /// Lifetime grants (fresh + re-adoptions).
    pub grants: u64,
    /// Lifetime accepted renewals.
    pub renews: u64,
    /// Lifetime expirations.
    pub expirations: u64,
    /// Lifetime revocations.
    pub revocations: u64,
    /// Lifetime health-check evictions of silent shards (absent in
    /// pre-eviction snapshots).
    #[serde(default)]
    pub evicted_shards: u64,
    /// Journal entries appended since the coordinator started.
    pub journal_appends: u64,
    /// Journal entries replayed at startup.
    pub journal_replayed: u64,
}

/// A coordinator-to-shard wire response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CoordResponse {
    /// Reply to `Lease`.
    Granted {
        /// The lease id.
        lease_id: u64,
        /// The shard id (present this on re-lease after a partition).
        shard_id: u64,
        /// Fencing token for the next renewal.
        epoch: u64,
        /// The committed budget, W.
        budget_w: f64,
        /// Logical expiry tick.
        expires_tick: u64,
        /// Lease TTL in wall-clock milliseconds — the shard clamps to its
        /// floor when this much time passes without a successful renewal.
        ttl_ms: u64,
    },
    /// Reply to `Renew`.
    Renewed {
        /// The renewed lease.
        lease_id: u64,
        /// Fencing token for the next renewal.
        epoch: u64,
        /// The (possibly resettled) committed budget, W.
        budget_w: f64,
        /// New logical expiry tick.
        expires_tick: u64,
    },
    /// Typed lease rejection ([`LeaseError::code`]); the shard reacts by
    /// re-leasing (`expired`, `fenced`, `unknown-lease`) or retrying
    /// later (`denied`).
    Rejected {
        /// Stable machine-readable code.
        code: String,
        /// Human-readable detail.
        detail: String,
    },
    /// Reply to `Release`.
    Released,
    /// Reply to `Revoke`.
    Revoked,
    /// Reply to `Stats`.
    Stats(CoordStats),
    /// Typed transport/decode failure.
    Error {
        /// Stable machine-readable code.
        code: String,
        /// Human-readable detail.
        detail: String,
    },
    /// Reply to `Shutdown`.
    ShuttingDown,
}

/// One recorded coordinator state transition. Only *applied* operations
/// are journaled — denials and fenced renewals leave no trace — and every
/// entry records the logical tick it was applied at plus the post-op
/// epoch, so replay reproduces the exact expiry/operation interleaving
/// and verifies it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CoordJournalEntry {
    /// A lease was granted (fresh or re-adopted).
    Grant {
        /// The granted lease id.
        lease_id: u64,
        /// The shard it was granted to.
        shard_id: u64,
        /// The shard's reported demand, W.
        demand_w: f64,
        /// Logical tick the grant was applied at.
        tick: u64,
        /// Table epoch after the grant.
        epoch: u64,
    },
    /// A live lease was renewed.
    Renew {
        /// The renewed lease.
        lease_id: u64,
        /// Updated demand, W.
        demand_w: f64,
        /// Logical tick the renewal was applied at.
        tick: u64,
        /// Table epoch after the renewal.
        epoch: u64,
    },
    /// A lease was released (clean departure).
    Release {
        /// The released lease.
        lease_id: u64,
        /// Logical tick the release was applied at.
        tick: u64,
        /// Table epoch after the release.
        epoch: u64,
    },
    /// A lease was revoked by the operator.
    Revoke {
        /// The revoked lease.
        lease_id: u64,
        /// Logical tick the revocation was applied at.
        tick: u64,
        /// Table epoch after the revocation.
        epoch: u64,
    },
}

/// What [`replay_coordinator`] reconstructed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoordRecovery {
    /// Journal entries replayed.
    pub replayed: u64,
    /// The logical tick the rebuilt table resumed at.
    pub tick: u64,
    /// Live leases after replay — shards the restarted coordinator
    /// re-adopts on their next renewal or re-lease.
    pub live_leases: Vec<u64>,
    /// Expired-and-encumbered leases after replay.
    pub encumbered_leases: Vec<u64>,
    /// The lease id the next fresh grant will receive (burned ids stay
    /// burned, exactly like session node ids).
    pub next_lease: u64,
}

/// Fold a validated coordinator entry stream into a fresh lease table.
/// Each entry first advances the table to its recorded tick (recomputing
/// any expirations — and, when `evict_after_ticks > 0`, evictions —
/// deterministically), then applies its operation, then checks the
/// recorded post-op epoch — and for grants the recorded lease id —
/// against the recomputed values. The eviction horizon must match the
/// one the live table ran with, or recomputed epochs diverge.
pub fn replay_coordinator(
    entries: &[CoordJournalEntry],
    global_cap_w: f64,
    policy: ArbiterPolicy,
    ttl_ticks: u64,
    floor_w: f64,
    evict_after_ticks: u64,
) -> Result<(LeaseTable, CoordRecovery), JournalError> {
    let mut table = LeaseTable::new(global_cap_w, policy, ttl_ticks, floor_w);
    table.set_evict_after_ticks(evict_after_ticks);
    let diverged = |index: usize, detail: String| JournalError::LeaseDivergence { index, detail };
    let check = |index: usize, recorded: u64, table: &LeaseTable| {
        if table.epoch() == recorded {
            Ok(())
        } else {
            Err(JournalError::LeaseDivergence {
                index,
                detail: format!("recorded epoch {recorded}, recomputed {}", table.epoch()),
            })
        }
    };
    for (index, entry) in entries.iter().enumerate() {
        match entry {
            CoordJournalEntry::Grant { lease_id, shard_id, demand_w, tick, epoch } => {
                table.advance_to(*tick);
                let outcome = table
                    .grant(Some(*shard_id), *demand_w)
                    .map_err(|e| diverged(index, format!("journaled grant rejected: {e}")))?;
                if outcome.lease_id != *lease_id {
                    return Err(diverged(
                        index,
                        format!("recorded lease id {lease_id}, recomputed {}", outcome.lease_id),
                    ));
                }
                check(index, *epoch, &table)?;
            }
            CoordJournalEntry::Renew { lease_id, demand_w, tick, epoch } => {
                table.advance_to(*tick);
                table.renew_unchecked(*lease_id, *demand_w).ok_or_else(|| {
                    diverged(index, format!("journaled renew of dead lease {lease_id}"))
                })?;
                check(index, *epoch, &table)?;
            }
            CoordJournalEntry::Release { lease_id, tick, epoch } => {
                table.advance_to(*tick);
                table
                    .release(*lease_id)
                    .map_err(|e| diverged(index, format!("journaled release rejected: {e}")))?;
                check(index, *epoch, &table)?;
            }
            CoordJournalEntry::Revoke { lease_id, tick, epoch } => {
                table.advance_to(*tick);
                table
                    .revoke(*lease_id)
                    .map_err(|e| diverged(index, format!("journaled revoke rejected: {e}")))?;
                check(index, *epoch, &table)?;
            }
        }
    }
    let recovery = CoordRecovery {
        replayed: entries.len() as u64,
        tick: table.tick(),
        live_leases: table.live_ids(),
        encumbered_leases: table.encumbered_ids(),
        next_lease: table.next_lease(),
    };
    Ok((table, recovery))
}

/// Which side of the lease the shard is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardLeaseState {
    /// No lease yet (startup, or after a release): the shard runs at the
    /// configured floor — the deployment-level pre-lease reserve.
    Unleased,
    /// Lease live and renewing.
    Leased,
    /// Renewals are failing: the local cap decays toward the floor and
    /// never exceeds the last granted budget.
    Degraded,
}

impl ShardLeaseState {
    /// Stable name for the STATS snapshot.
    pub fn name(&self) -> &'static str {
        match self {
            ShardLeaseState::Unleased => "unleased",
            ShardLeaseState::Leased => "leased",
            ShardLeaseState::Degraded => "degraded",
        }
    }
}

/// The shard-side lease state machine. Pure — the lease client thread
/// owns the clock and the socket; this type only decides what the local
/// cap may be. Invariants: the cap never exceeds the last granted budget,
/// and between grants it is monotone non-increasing.
#[derive(Debug, Clone)]
pub struct ShardLease {
    floor_w: f64,
    state: ShardLeaseState,
    lease_id: Option<u64>,
    shard_id: Option<u64>,
    epoch: u64,
    cap_w: f64,
    last_grant_w: f64,
    misses: u64,
    degraded_entries: u64,
}

impl ShardLease {
    /// A fresh, unleased shard: the local cap starts at the floor.
    pub fn new(floor_w: f64) -> Self {
        assert!(floor_w > 0.0, "floor must be positive");
        Self {
            floor_w,
            state: ShardLeaseState::Unleased,
            lease_id: None,
            shard_id: None,
            epoch: 0,
            cap_w: floor_w,
            last_grant_w: floor_w,
            misses: 0,
            degraded_entries: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> ShardLeaseState {
        self.state
    }

    /// The cap the shard's arbiter may run at right now, W.
    pub fn cap_w(&self) -> f64 {
        self.cap_w
    }

    /// The lease id, once granted.
    pub fn lease_id(&self) -> Option<u64> {
        self.lease_id
    }

    /// The shard id, once assigned — survives re-leasing so the
    /// coordinator re-adopts instead of double-granting.
    pub fn shard_id(&self) -> Option<u64> {
        self.shard_id
    }

    /// The fencing token to present on the next renewal.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Consecutive missed renewals since the last successful contact.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// How many times the shard has entered degraded mode.
    pub fn degraded_entries(&self) -> u64 {
        self.degraded_entries
    }

    /// A grant (or re-adoption) landed. Returns the cap to apply. A
    /// zero-watt grant — a shard admitted mid-ramp, before the incumbents
    /// have renewed down — keeps the previous cap (the floor at startup,
    /// which the deployment's pre-lease reserve covers) and ramps at the
    /// next renewal.
    pub fn on_granted(&mut self, lease_id: u64, shard_id: u64, epoch: u64, budget_w: f64) -> f64 {
        self.state = ShardLeaseState::Leased;
        self.lease_id = Some(lease_id);
        self.shard_id = Some(shard_id);
        self.epoch = epoch;
        if budget_w > 0.0 {
            self.cap_w = budget_w;
        }
        self.last_grant_w = self.cap_w;
        self.misses = 0;
        self.cap_w
    }

    /// A renewal landed. Returns the cap to apply (zero-watt budgets are
    /// handled as in [`Self::on_granted`]).
    pub fn on_renewed(&mut self, epoch: u64, budget_w: f64) -> f64 {
        self.state = ShardLeaseState::Leased;
        self.epoch = epoch;
        if budget_w > 0.0 {
            self.cap_w = budget_w;
        }
        self.last_grant_w = self.cap_w;
        self.misses = 0;
        self.cap_w
    }

    /// A renewal failed (timeout, refused connection, rejection that
    /// needs a re-lease). The cap halves toward `min(floor, last grant)`
    /// — never below it, never above the last grant. Returns the cap to
    /// apply.
    pub fn on_miss(&mut self) -> f64 {
        if self.state == ShardLeaseState::Unleased {
            return self.cap_w;
        }
        if self.state != ShardLeaseState::Degraded {
            self.state = ShardLeaseState::Degraded;
            self.degraded_entries += 1;
        }
        self.misses += 1;
        self.cap_w = (self.cap_w * 0.5).max(self.floor_w.min(self.last_grant_w));
        self.cap_w
    }

    /// The lease TTL passed by the shard's own clock without a renewal:
    /// clamp to the encumbered reserve the coordinator is holding —
    /// `min(floor, last grant)` — so both sides agree on the worst case
    /// without communicating. Returns the cap to apply.
    pub fn on_expired(&mut self) -> f64 {
        if self.state == ShardLeaseState::Unleased {
            return self.cap_w;
        }
        if self.state != ShardLeaseState::Degraded {
            self.state = ShardLeaseState::Degraded;
            self.degraded_entries += 1;
        }
        self.cap_w = self.floor_w.min(self.last_grant_w);
        self.cap_w
    }

    /// The lease was released (clean shutdown): back to unleased at the
    /// floor, keeping the shard id for a possible later re-lease.
    pub fn on_released(&mut self) {
        self.state = ShardLeaseState::Unleased;
        self.lease_id = None;
        self.cap_w = self.floor_w.min(self.last_grant_w);
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{read_frame_blocking, write_frame};
    use std::io::Cursor;

    fn table() -> LeaseTable {
        LeaseTable::new(100.0, ArbiterPolicy::EqualShare, 10, 5.0)
    }

    /// Renew every live lease once, in id order, presenting its fence.
    fn renew_round(t: &mut LeaseTable) {
        for id in t.live_ids() {
            let fence = t.lease(id).unwrap().fence;
            t.renew(id, fence.max(t.epoch()), t.lease(id).unwrap().demand_w).unwrap();
        }
    }

    #[test]
    fn first_grant_owns_the_pool_and_later_shards_ramp_in() {
        let mut t = table();
        let a = t.grant(None, 30.0).unwrap();
        assert_eq!(a.budget_w, 100.0, "sole lease owns the whole pool");
        assert_eq!(t.overshoot_w(), 0.0);

        // A holds everything, so B is admitted at zero — commit-on-contact
        // forbids shrinking A behind its back — and ramps in as A renews
        // down toward the new 50/50 target.
        let b = t.grant(None, 30.0).unwrap();
        assert_eq!(b.budget_w, 0.0, "no free watts until the incumbent renews down");
        assert_eq!(t.overshoot_w(), 0.0);

        // One round in id order: A renews down to 50, then B picks up the
        // freed 50.
        renew_round(&mut t);
        let ca = t.lease(a.lease_id).unwrap().committed_w;
        let cb = t.lease(b.lease_id).unwrap().committed_w;
        assert_eq!(ca + cb, 100.0, "converged live commitments fill the pool exactly");
        assert!((ca - 50.0).abs() < 1e-9 && (cb - 50.0).abs() < 1e-9);
        assert_eq!(t.overshoot_w(), 0.0);
    }

    #[test]
    fn grants_below_a_floor_sized_target_are_denied_without_trace() {
        // Floor 45 of a 100 W cap: two shards fit (target 50), a third
        // (target 33.3) does not.
        let mut t = LeaseTable::new(100.0, ArbiterPolicy::EqualShare, 10, 45.0);
        t.grant(None, 0.0).unwrap();
        t.grant(None, 0.0).unwrap();
        let epoch_before = t.epoch();
        match t.grant(None, 0.0) {
            Err(LeaseError::Denied { needed_w, available_w }) => {
                assert_eq!(needed_w, 45.0);
                assert!((available_w - 100.0 / 3.0).abs() < 1e-9);
            }
            other => panic!("expected Denied, got {other:?}"),
        }
        assert_eq!(t.epoch(), epoch_before, "a denial leaves no trace");
        assert_eq!(t.snapshot().len(), 2);
    }

    #[test]
    fn commitments_never_exceed_the_pool_mid_ramp() {
        let mut t = LeaseTable::new(90.0, ArbiterPolicy::DemandProportional, 10, 2.0);
        let a = t.grant(None, 40.0).unwrap();
        t.renew(a.lease_id, t.epoch(), 40.0).unwrap();
        let _b = t.grant(None, 10.0).unwrap();
        let _c = t.grant(None, 25.0).unwrap();
        assert_eq!(t.overshoot_w(), 0.0, "no overshoot at any step");
        for _ in 0..4 {
            renew_round(&mut t);
            assert_eq!(t.overshoot_w(), 0.0);
        }
        assert_eq!(t.live_committed_w(), t.pool_w(), "quiescent sum is exact");
    }

    #[test]
    fn expiry_encumbers_at_the_floor_and_frees_the_rest() {
        let mut t = table();
        let a = t.grant(None, 0.0).unwrap();
        let b = t.grant(None, 0.0).unwrap();
        renew_round(&mut t);
        assert_eq!(t.live_committed_w(), 100.0, "converged before the partition");

        // A goes silent; B keeps renewing past A's expiry (B's renewal at
        // tick 5 pushes its own expiry out to 15, A's stays at 10).
        t.advance_to(5);
        let fence = t.lease(b.lease_id).unwrap().fence;
        t.renew(b.lease_id, fence.max(t.epoch()), 0.0).unwrap();
        let expired = t.advance_to(t.lease(a.lease_id).unwrap().expires_tick);
        assert_eq!(expired, vec![a.lease_id]);
        let ls = t.lease(a.lease_id).unwrap();
        assert!(!ls.live);
        assert_eq!(ls.committed_w, 5.0, "encumbered exactly at the floor");
        assert_eq!(t.encumbered_w(), 5.0);
        assert_eq!(t.pool_w(), 95.0);

        // B's next renewal absorbs the freed watts; the fleet total stays
        // at the cap (B's 95 + A's encumbered 5).
        renew_round(&mut t);
        assert_eq!(t.lease(b.lease_id).unwrap().committed_w, 95.0);
        assert_eq!(t.fleet_committed_w(), 100.0);
        assert_eq!(t.overshoot_w(), 0.0);
    }

    #[test]
    fn expired_lease_renewal_is_rejected_and_readoption_keeps_the_id() {
        let mut t = table();
        let a = t.grant(None, 0.0).unwrap();
        t.advance_to(a.expires_tick);

        match t.renew(a.lease_id, a.epoch, 0.0) {
            Err(LeaseError::Expired { lease_id }) => assert_eq!(lease_id, a.lease_id),
            other => panic!("expected Expired, got {other:?}"),
        }

        // Re-lease with the remembered shard id: same lease, no double
        // grant. Re-adoption is contact, so the sole lease ramps straight
        // back up — the whole pool is genuinely free.
        let again = t.grant(Some(a.shard_id), 0.0).unwrap();
        assert_eq!(again.lease_id, a.lease_id);
        assert_eq!(again.shard_id, a.shard_id);
        assert_eq!(again.budget_w, 100.0, "re-adopted sole lease reclaims the free pool");
        assert_eq!(t.snapshot().len(), 1, "never two leases for one shard");
        assert_eq!(t.overshoot_w(), 0.0);

        // The pre-expiry epoch is now behind the fence.
        match t.renew(a.lease_id, a.epoch, 0.0) {
            Err(LeaseError::Fenced { fence, presented, .. }) => {
                assert!(presented < fence);
            }
            other => panic!("expected Fenced, got {other:?}"),
        }
        // The re-adoption epoch clears it.
        t.renew(a.lease_id, again.epoch, 0.0).unwrap();
        assert_eq!(t.lease(a.lease_id).unwrap().committed_w, 100.0);
    }

    #[test]
    fn release_and_revoke_free_the_encumbrance() {
        let mut t = table();
        let a = t.grant(None, 0.0).unwrap();
        t.advance_to(a.expires_tick);
        assert_eq!(t.encumbered_w(), 5.0);
        t.revoke(a.lease_id).unwrap();
        assert_eq!(t.encumbered_w(), 0.0);
        assert_eq!(t.revocations(), 1);
        assert_eq!(t.pool_w(), 100.0);
        assert!(matches!(t.release(a.lease_id), Err(LeaseError::UnknownLease { .. })));

        let b = t.grant(None, 0.0).unwrap();
        assert_ne!(b.lease_id, a.lease_id, "burned lease ids stay burned");
        t.release(b.lease_id).unwrap();
        assert_eq!(t.fleet_committed_w(), 0.0);
    }

    #[test]
    fn eviction_reclaims_the_encumbrance_and_readmission_is_a_fresh_grant() {
        let mut t = table();
        t.set_evict_after_ticks(3);
        let a = t.grant(None, 0.0).unwrap();
        let b = t.grant(None, 0.0).unwrap();
        renew_round(&mut t);

        // B stays healthy; A goes silent and expires at tick 10.
        t.advance_to(5);
        let fence = t.lease(b.lease_id).unwrap().fence;
        t.renew(b.lease_id, fence.max(t.epoch()), 0.0).unwrap();
        t.advance_to(10);
        let ls = t.lease(a.lease_id).unwrap();
        assert!(!ls.live);
        assert_eq!(ls.expired_tick, 10, "expired_tick records the lease's own expiry");
        assert_eq!(t.encumbered_w(), 5.0);

        // Inside the horizon the encumbrance holds; B stays renewed.
        t.advance_to(12);
        assert_eq!(t.encumbered_w(), 5.0);
        let fence = t.lease(b.lease_id).unwrap().fence;
        t.renew(b.lease_id, fence.max(t.epoch()), 0.0).unwrap();

        // Horizon crossed: the silent shard is evicted, reserve reclaimed.
        t.advance_to(13);
        assert!(t.lease(a.lease_id).is_none(), "evicted lease is gone");
        assert_eq!(t.evictions(), 1);
        assert_eq!(t.encumbered_w(), 0.0);
        assert_eq!(t.pool_w(), 100.0);
        renew_round(&mut t);
        assert_eq!(t.lease(b.lease_id).unwrap().committed_w, 100.0);
        assert_eq!(t.overshoot_w(), 0.0);

        // The shard comes back: a fresh grant under a new lease id (burned
        // ids stay burned), admitted through the normal floor check.
        let again = t.grant(Some(a.shard_id), 0.0).unwrap();
        assert_ne!(again.lease_id, a.lease_id);
        assert_eq!(again.shard_id, a.shard_id);
        assert_eq!(t.overshoot_w(), 0.0);
    }

    #[test]
    fn eviction_is_replay_pure_when_the_horizon_matches() {
        let mut live = table();
        live.set_evict_after_ticks(3);
        let mut journal: Vec<CoordJournalEntry> = Vec::new();
        let record_grant = |t: &mut LeaseTable, j: &mut Vec<CoordJournalEntry>, sid, d| {
            let o = t.grant(sid, d).unwrap();
            j.push(CoordJournalEntry::Grant {
                lease_id: o.lease_id,
                shard_id: o.shard_id,
                demand_w: d,
                tick: t.tick(),
                epoch: o.epoch,
            });
            o
        };
        let a = record_grant(&mut live, &mut journal, None, 0.0);
        let b = record_grant(&mut live, &mut journal, None, 0.0);
        live.advance_to(5);
        let o = live.renew(b.lease_id, live.epoch(), 0.0).unwrap();
        journal.push(CoordJournalEntry::Renew {
            lease_id: b.lease_id,
            demand_w: 0.0,
            tick: 5,
            epoch: o.epoch,
        });
        // The live table detects A's expiry at tick 11 and the eviction at
        // tick 13 — intermediate advances replay never sees. Both events
        // are keyed to pure lease state (expiry 10, eviction 10+3), so
        // replay, jumping straight to the next entry's tick, recomputes
        // the same epoch sequence.
        live.advance_to(11);
        live.advance_to(13);
        let o = live.renew(b.lease_id, live.epoch(), 0.0).unwrap();
        journal.push(CoordJournalEntry::Renew {
            lease_id: b.lease_id,
            demand_w: 0.0,
            tick: 13,
            epoch: o.epoch,
        });
        let a2 = record_grant(&mut live, &mut journal, Some(a.shard_id), 0.0);
        assert_ne!(a2.lease_id, a.lease_id, "evicted shard re-admits under a fresh lease");

        let (rebuilt, recovery) =
            replay_coordinator(&journal, 100.0, ArbiterPolicy::EqualShare, 10, 5.0, 3).unwrap();
        assert_eq!(rebuilt.snapshot(), live.snapshot(), "replay lands on the exact table");
        assert_eq!(rebuilt.epoch(), live.epoch());
        assert_eq!(rebuilt.evictions(), live.evictions());
        assert_eq!(recovery.next_lease, live.next_lease());

        // A mismatched horizon loses the eviction's epoch bump and is
        // caught by the post-op epoch check, not silently absorbed.
        assert!(matches!(
            replay_coordinator(&journal, 100.0, ArbiterPolicy::EqualShare, 10, 5.0, 0),
            Err(JournalError::LeaseDivergence { .. })
        ));
    }

    #[test]
    fn demand_proportional_targets_favor_hungry_shards() {
        let mut t = LeaseTable::new(100.0, ArbiterPolicy::DemandProportional, 10, 2.0);
        let a = t.grant(None, 10.0).unwrap();
        t.renew(a.lease_id, a.epoch, 10.0).unwrap();
        let b = t.grant(None, 40.0).unwrap();
        for _ in 0..3 {
            renew_round(&mut t);
        }
        let ca = t.lease(a.lease_id).unwrap().committed_w;
        let cb = t.lease(b.lease_id).unwrap().committed_w;
        assert!(cb > ca, "hungry shard got {cb}, satisfied shard got {ca}");
        assert!(ca >= 0.5 * t.pool_w() / 2.0 - 1e-9, "the floor half is guaranteed");
        assert_eq!(ca + cb, t.pool_w());
    }

    #[test]
    fn replay_reproduces_the_exact_table() {
        let mut live = LeaseTable::new(80.0, ArbiterPolicy::DemandProportional, 5, 3.0);
        let mut journal: Vec<CoordJournalEntry> = Vec::new();
        let record_grant = |t: &mut LeaseTable, j: &mut Vec<CoordJournalEntry>, sid, d| {
            let o = t.grant(sid, d).unwrap();
            j.push(CoordJournalEntry::Grant {
                lease_id: o.lease_id,
                shard_id: o.shard_id,
                demand_w: d,
                tick: t.tick(),
                epoch: o.epoch,
            });
            o
        };
        let a = record_grant(&mut live, &mut journal, None, 20.0);
        live.advance_to(2);
        let o = live.renew(a.lease_id, a.epoch, 25.0).unwrap();
        journal.push(CoordJournalEntry::Renew {
            lease_id: a.lease_id,
            demand_w: 25.0,
            tick: 2,
            epoch: o.epoch,
        });
        let b = record_grant(&mut live, &mut journal, None, 10.0);
        // B renews at tick 6, pushing its expiry to 11; A goes silent and
        // expires at 7, so B's next renewal at 8 crosses the expiry.
        live.advance_to(6);
        let o = live.renew(b.lease_id, b.epoch, 10.0).unwrap();
        journal.push(CoordJournalEntry::Renew {
            lease_id: b.lease_id,
            demand_w: 10.0,
            tick: 6,
            epoch: o.epoch,
        });
        live.advance_to(8);
        let o = live.renew(b.lease_id, o.epoch, 10.0).unwrap();
        journal.push(CoordJournalEntry::Renew {
            lease_id: b.lease_id,
            demand_w: 10.0,
            tick: 8,
            epoch: o.epoch,
        });
        // A comes back and is re-adopted.
        let a2 = record_grant(&mut live, &mut journal, Some(a.shard_id), 20.0);
        assert_eq!(a2.lease_id, a.lease_id);

        let (rebuilt, recovery) =
            replay_coordinator(&journal, 80.0, ArbiterPolicy::DemandProportional, 5, 3.0, 0)
                .unwrap();
        assert_eq!(rebuilt.snapshot(), live.snapshot(), "replay lands on the exact table");
        assert_eq!(rebuilt.epoch(), live.epoch());
        assert_eq!(rebuilt.tick(), live.tick());
        assert_eq!(recovery.replayed, journal.len() as u64);
        assert_eq!(recovery.next_lease, live.next_lease());
        assert_eq!(recovery.live_leases, live.live_ids());
    }

    #[test]
    fn replay_rejects_divergent_histories() {
        let entries = vec![CoordJournalEntry::Grant {
            lease_id: 1,
            shard_id: 1,
            demand_w: 0.0,
            tick: 0,
            epoch: 42, // a fresh table's first grant lands on epoch 1
        }];
        match replay_coordinator(&entries, 100.0, ArbiterPolicy::EqualShare, 10, 5.0, 0) {
            Err(JournalError::LeaseDivergence { index: 0, detail }) => {
                assert!(detail.contains("recorded epoch 42"), "unhelpful detail: {detail}");
            }
            other => panic!("expected LeaseDivergence, got {other:?}"),
        }

        let entries =
            vec![CoordJournalEntry::Renew { lease_id: 7, demand_w: 0.0, tick: 0, epoch: 1 }];
        assert!(matches!(
            replay_coordinator(&entries, 100.0, ArbiterPolicy::EqualShare, 10, 5.0, 0),
            Err(JournalError::LeaseDivergence { index: 0, .. })
        ));
    }

    #[test]
    fn shard_lease_decays_but_never_exceeds_the_last_grant() {
        let mut s = ShardLease::new(5.0);
        assert_eq!(s.state(), ShardLeaseState::Unleased);
        assert_eq!(s.cap_w(), 5.0, "unleased shards run at the floor");
        assert_eq!(s.on_miss(), 5.0, "misses before any lease change nothing");

        s.on_granted(1, 1, 3, 40.0);
        assert_eq!(s.state(), ShardLeaseState::Leased);
        assert_eq!(s.cap_w(), 40.0);

        // Misses halve toward the floor and never go below it.
        assert_eq!(s.on_miss(), 20.0);
        assert_eq!(s.state(), ShardLeaseState::Degraded);
        assert_eq!(s.degraded_entries(), 1);
        assert_eq!(s.on_miss(), 10.0);
        assert_eq!(s.on_miss(), 5.0);
        assert_eq!(s.on_miss(), 5.0);
        assert_eq!(s.misses(), 4);
        for _ in 0..8 {
            assert!(s.on_miss() <= 40.0, "the cap never exceeds the last grant");
        }

        // A successful renewal recovers the lease and resets the misses.
        s.on_renewed(9, 33.0);
        assert_eq!(s.state(), ShardLeaseState::Leased);
        assert_eq!((s.cap_w(), s.misses()), (33.0, 0));
        assert_eq!(s.degraded_entries(), 1, "recovery does not recount the entry");

        // TTL expiry clamps straight to the floor.
        s.on_expired();
        assert_eq!(s.cap_w(), 5.0);
        assert_eq!(s.degraded_entries(), 2);
    }

    #[test]
    fn shard_lease_floor_clamp_respects_a_tiny_last_grant() {
        // A shard whose last grant was *below* the floor must clamp to the
        // grant, not up to the floor — degraded mode never raises the cap.
        let mut s = ShardLease::new(10.0);
        s.on_granted(1, 1, 1, 4.0);
        assert_eq!(s.on_miss(), 4.0, "min(floor, last grant) bounds the decay");
        assert_eq!(s.on_expired(), 4.0);
    }

    #[test]
    fn coordinator_frames_roundtrip() {
        fn roundtrip<T: serde::Serialize + serde::Deserialize + PartialEq + std::fmt::Debug>(
            msg: &T,
        ) {
            let mut buf = Vec::new();
            write_frame(&mut buf, msg).unwrap();
            let back: T = read_frame_blocking(&mut Cursor::new(&buf)).unwrap().unwrap();
            assert_eq!(&back, msg);
        }
        roundtrip(&CoordRequest::Lease { shard_id: None, demand_w: 12.5 });
        roundtrip(&CoordRequest::Lease { shard_id: Some(3), demand_w: 0.0 });
        roundtrip(&CoordRequest::Renew { lease_id: 2, epoch: 9, demand_w: 7.0 });
        roundtrip(&CoordRequest::Release { lease_id: 2 });
        roundtrip(&CoordRequest::Revoke { lease_id: 2 });
        roundtrip(&CoordRequest::Stats);
        roundtrip(&CoordRequest::Shutdown);
        roundtrip(&CoordResponse::Granted {
            lease_id: 1,
            shard_id: 1,
            epoch: 1,
            budget_w: 50.0,
            expires_tick: 10,
            ttl_ms: 500,
        });
        roundtrip(&CoordResponse::Renewed {
            lease_id: 1,
            epoch: 2,
            budget_w: 48.0,
            expires_tick: 20,
        });
        roundtrip(&CoordResponse::Rejected { code: "fenced".into(), detail: "stale".into() });
        roundtrip(&CoordResponse::Released);
        roundtrip(&CoordResponse::ShuttingDown);
    }

    #[test]
    fn lease_error_codes_are_stable() {
        assert_eq!(LeaseError::Denied { needed_w: 5.0, available_w: 0.0 }.code(), "denied");
        assert_eq!(LeaseError::UnknownLease { lease_id: 1 }.code(), "unknown-lease");
        assert_eq!(LeaseError::Expired { lease_id: 1 }.code(), "expired");
        assert_eq!(LeaseError::Fenced { lease_id: 1, fence: 2, presented: 1 }.code(), "fenced");
    }
}
