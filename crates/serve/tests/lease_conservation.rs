//! Property tests for the coordinator's lease table, mirroring
//! `arbiter_conservation.rs` one layer up: under random interleavings of
//! grants, renewals, clock advances, releases, and revocations —
//!
//! - the live commitments never exceed the unencumbered pool (so the
//!   fleet-wide sum never exceeds the global cap, even mid-ramp),
//! - every committed budget stays non-negative and every expired lease's
//!   encumbrance stays at most the floor,
//! - and replaying the journaled ops reproduces the *exact* table — same
//!   epoch, same tick, same lease ids, bit-identical budgets — so a
//!   SIGKILLed coordinator re-adopts instead of double-granting.

use acs_serve::lease::CoordJournalEntry;
use acs_serve::{replay_coordinator, ArbiterPolicy, LeaseTable};
use proptest::prelude::*;

const CAP_W: f64 = 100.0;
const FLOOR_W: f64 = 4.0;
const TTL_TICKS: u64 = 6;

fn policy_from(n: u8) -> ArbiterPolicy {
    if n.is_multiple_of(2) {
        ArbiterPolicy::EqualShare
    } else {
        ArbiterPolicy::DemandProportional
    }
}

/// One encoded operation against the table. The clock advances by `dt`
/// first, exactly as the coordinator does under its table lock.
fn apply(
    table: &mut LeaseTable,
    journal: &mut Vec<CoordJournalEntry>,
    op: u8,
    pick: u64,
    demand_w: f64,
    dt: u64,
) {
    table.advance_to(table.tick() + dt);
    let live = table.live_ids();
    match op % 4 {
        0 => {
            let epoch_before = table.epoch();
            match table.grant(None, demand_w) {
                Ok(o) => journal.push(CoordJournalEntry::Grant {
                    lease_id: o.lease_id,
                    shard_id: o.shard_id,
                    demand_w: demand_w.max(0.0),
                    tick: table.tick(),
                    epoch: o.epoch,
                }),
                // Denials leave no trace: nothing journaled, nothing bumped.
                Err(_) => assert_eq!(table.epoch(), epoch_before),
            }
        }
        1 => {
            if let Some(&lease_id) = live.get(pick as usize % live.len().max(1)) {
                let epoch = table.epoch();
                if let Ok(o) = table.renew(lease_id, epoch, demand_w) {
                    journal.push(CoordJournalEntry::Renew {
                        lease_id,
                        demand_w: demand_w.max(0.0),
                        tick: table.tick(),
                        epoch: o.epoch,
                    });
                }
            }
        }
        2 => {
            if let Some(&lease_id) = live.get(pick as usize % live.len().max(1)) {
                if table.release(lease_id).is_ok() {
                    journal.push(CoordJournalEntry::Release {
                        lease_id,
                        tick: table.tick(),
                        epoch: table.epoch(),
                    });
                }
            }
        }
        _ => {
            let encumbered = table.encumbered_ids();
            if let Some(&lease_id) = encumbered.get(pick as usize % encumbered.len().max(1)) {
                if table.revoke(lease_id).is_ok() {
                    journal.push(CoordJournalEntry::Revoke {
                        lease_id,
                        tick: table.tick(),
                        epoch: table.epoch(),
                    });
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Fleet-wide conservation holds after every op: live commitments fit
    /// inside the unencumbered pool, the total never exceeds the cap, and
    /// no lease ever commits a negative or floor-busting amount.
    #[test]
    fn commitments_never_exceed_the_cap_under_random_churn(
        policy in 0u8..2,
        ops in prop::collection::vec(
            (0u8..4, 0u64..16, 0.0..60.0f64, 0u64..4), 1..160),
    ) {
        let mut table =
            LeaseTable::new(CAP_W, policy_from(policy), TTL_TICKS, FLOOR_W);
        let mut journal = Vec::new();
        for (i, &(op, pick, demand_w, dt)) in ops.iter().enumerate() {
            apply(&mut table, &mut journal, op, pick, demand_w, dt);
            prop_assert!(
                table.overshoot_w() == 0.0,
                "op {} ({},{},{},{}): live {} W overshoots pool {} W",
                i, op, pick, demand_w, dt,
                table.live_committed_w(), table.pool_w()
            );
            prop_assert!(
                table.fleet_committed_w() <= CAP_W + 1e-9,
                "op {}: fleet committed {} W exceeds the {} W cap",
                i, table.fleet_committed_w(), CAP_W
            );
            for (id, lease) in table.snapshot() {
                prop_assert!(
                    lease.committed_w >= 0.0,
                    "lease {} committed a negative {} W", id, lease.committed_w
                );
                if !lease.live {
                    prop_assert!(
                        lease.committed_w <= FLOOR_W + 1e-9,
                        "expired lease {} encumbers {} W above the {} W floor",
                        id, lease.committed_w, FLOOR_W
                    );
                }
            }
        }
    }

    /// Replaying the journal reproduces the exact table: every counter,
    /// every lease id, every budget bit. In particular `next_lease`
    /// matches, so a restarted coordinator can never hand a granted id
    /// out twice (no double-grant after replay).
    #[test]
    fn journal_replay_reproduces_the_exact_table(
        policy in 0u8..2,
        ops in prop::collection::vec(
            (0u8..4, 0u64..16, 0.0..60.0f64, 0u64..4), 1..120),
    ) {
        let mut live = LeaseTable::new(CAP_W, policy_from(policy), TTL_TICKS, FLOOR_W);
        let mut journal = Vec::new();
        for &(op, pick, demand_w, dt) in &ops {
            apply(&mut live, &mut journal, op, pick, demand_w, dt);
        }

        let (mut replayed, recovery) =
            replay_coordinator(&journal, CAP_W, policy_from(policy), TTL_TICKS, FLOOR_W, 0)
                .expect("a faithfully recorded journal replays");
        prop_assert_eq!(recovery.replayed, journal.len() as u64);
        // The restarted coordinator's first act is advancing to the
        // current tick, which re-runs any expirations that happened after
        // the last journaled op.
        replayed.advance_to(live.tick());

        prop_assert_eq!(replayed.epoch(), live.epoch());
        prop_assert_eq!(replayed.tick(), live.tick());
        prop_assert_eq!(replayed.next_lease(), live.next_lease());
        prop_assert_eq!(replayed.grants(), live.grants());
        prop_assert_eq!(replayed.renews(), live.renews());
        prop_assert_eq!(replayed.expirations(), live.expirations());
        prop_assert_eq!(replayed.revocations(), live.revocations());
        prop_assert_eq!(replayed.live_ids(), live.live_ids());
        prop_assert_eq!(replayed.encumbered_ids(), live.encumbered_ids());
        for (id, lease) in live.snapshot() {
            let got = *replayed.lease(id).expect("replay kept every lease");
            prop_assert_eq!(got, lease, "lease {} diverged after replay", id);
            prop_assert_eq!(
                got.committed_w.to_bits(),
                lease.committed_w.to_bits(),
                "lease {} budget is not bit-identical", id
            );
        }
    }

    /// With health-checked eviction armed, the same random op storms must
    /// keep exact-sum conservation while expired leases are *removed* —
    /// no zombie encumbrance survives past the horizon — and a grant
    /// after an eviction re-admits against the reclaimed pool. Replay at
    /// the same horizon still reproduces the bit-exact table, eviction
    /// counters included, even though evictions are never journaled.
    #[test]
    fn eviction_reclaims_zombies_and_replays_exactly_under_random_storms(
        policy in 0u8..2,
        horizon in 1u64..5,
        ops in prop::collection::vec(
            (0u8..4, 0u64..16, 0.0..60.0f64, 0u64..4), 1..120),
    ) {
        let mut live = LeaseTable::new(CAP_W, policy_from(policy), TTL_TICKS, FLOOR_W);
        live.set_evict_after_ticks(horizon);
        let mut journal = Vec::new();
        for (i, &(op, pick, demand_w, dt)) in ops.iter().enumerate() {
            apply(&mut live, &mut journal, op, pick, demand_w, dt);
            prop_assert!(
                live.overshoot_w() == 0.0,
                "op {}: live {} W overshoots pool {} W under eviction",
                i, live.live_committed_w(), live.pool_w()
            );
            prop_assert!(
                live.fleet_committed_w() <= CAP_W + 1e-9,
                "op {}: fleet committed {} W exceeds the {} W cap under eviction",
                i, live.fleet_committed_w(), CAP_W
            );
            for (id, lease) in live.snapshot() {
                if !lease.live {
                    prop_assert!(
                        lease.expired_tick + horizon > live.tick(),
                        "op {}: lease {} expired at {} should have been evicted by {}",
                        i, id, lease.expired_tick, live.tick()
                    );
                }
            }
        }

        let (mut replayed, recovery) =
            replay_coordinator(&journal, CAP_W, policy_from(policy), TTL_TICKS, FLOOR_W, horizon)
                .expect("a faithfully recorded journal replays under eviction");
        prop_assert_eq!(recovery.replayed, journal.len() as u64);
        replayed.advance_to(live.tick());

        prop_assert_eq!(replayed.epoch(), live.epoch());
        prop_assert_eq!(replayed.next_lease(), live.next_lease());
        prop_assert_eq!(replayed.evictions(), live.evictions());
        prop_assert_eq!(replayed.live_ids(), live.live_ids());
        prop_assert_eq!(replayed.encumbered_ids(), live.encumbered_ids());
        for (id, lease) in live.snapshot() {
            let got = *replayed.lease(id).expect("replay kept every surviving lease");
            prop_assert_eq!(got, lease, "lease {} diverged after eviction replay", id);
            prop_assert_eq!(
                got.committed_w.to_bits(),
                lease.committed_w.to_bits(),
                "lease {} budget is not bit-identical under eviction", id
            );
        }
    }
}
