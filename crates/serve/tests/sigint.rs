//! SIGINT handling lives in its own test binary: the signal flag is
//! process-wide (as SIGINT itself is), so this must not share a process
//! with the other server tests.
#![cfg(unix)]

use acs_core::{train, KernelProfile, TrainingParams};
use acs_serve::{Client, Request, Response, ServeConfig, Server};
use acs_sim::Machine;

#[test]
fn sigint_drains_the_server() {
    extern "C" {
        fn raise(sig: i32) -> i32;
    }
    let machine = Machine::new(2014);
    let profiles: Vec<KernelProfile> = acs_kernels::all_kernel_instances()
        .iter()
        .take(12)
        .map(|k| KernelProfile::collect(&machine, k))
        .collect();
    let model = train(&profiles, TrainingParams::default()).expect("training succeeds");

    let server = Server::bind(ServeConfig::default(), model).expect("bind succeeds");
    let addr = server.local_addr().to_string();
    let join = std::thread::spawn(move || server.run().expect("server runs"));

    let mut client = Client::connect(&addr).unwrap();
    assert!(matches!(client.call(&Request::Hello).unwrap(), Response::Welcome { .. }));
    unsafe {
        raise(2); // SIGINT; the handler only sets a flag.
    }
    join.join().unwrap();
}
