//! End-to-end server tests over real sockets: handshake, selection,
//! batches, runs, arbiter reshuffles, admission control, typed bind
//! errors, hostile frames, and both shutdown paths.

use acs_core::{train, KernelProfile, TrainedModel, TrainingParams};
use acs_serve::{ArbiterPolicy, Client, Request, Response, ServeConfig, ServeError, Server};
use acs_sim::Machine;
use std::io::Write;
use std::sync::OnceLock;
use std::time::Duration;

/// One small-but-real model shared by every test in this file.
fn model() -> TrainedModel {
    static MODEL: OnceLock<TrainedModel> = OnceLock::new();
    MODEL
        .get_or_init(|| {
            let machine = Machine::new(2014);
            let profiles: Vec<KernelProfile> = acs_kernels::all_kernel_instances()
                .iter()
                .take(16)
                .map(|k| KernelProfile::collect(&machine, k))
                .collect();
            train(&profiles, TrainingParams::default()).expect("training succeeds")
        })
        .clone()
}

fn spawn(config: ServeConfig) -> (String, acs_serve::ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(config, model()).expect("bind succeeds");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server runs"));
    (addr, handle, join)
}

fn kernel_ids(n: usize) -> Vec<String> {
    acs_kernels::all_kernel_instances().iter().take(n).map(|k| k.id()).collect()
}

#[test]
fn hello_select_run_stats_bye() {
    let (addr, handle, join) = spawn(ServeConfig::default());
    let mut client = Client::connect(&addr).unwrap();

    let hello = client.call(&Request::Hello).unwrap();
    let budget = match hello {
        Response::Welcome { node_id, budget_w } => {
            assert!(node_id >= 1);
            assert!((budget_w - 120.0).abs() < 1e-9, "sole node owns the cap, got {budget_w}");
            budget_w
        }
        other => panic!("expected Welcome, got {other:?}"),
    };

    let id = &kernel_ids(1)[0];
    match client
        .call(&Request::Select { kernel_id: id.clone(), deadline_ms: None, priority: 0 })
        .unwrap()
    {
        Response::Selected(s) => {
            assert_eq!(&s.kernel_id, id);
            assert_eq!(s.budget_w, budget);
            assert!(s.predicted_power_w > 0.0 && s.predicted_perf > 0.0);
        }
        other => panic!("expected Selected, got {other:?}"),
    }

    match client
        .call(&Request::Run {
            kernel_id: id.clone(),
            iterations: 3,
            idem: None,
            deadline_ms: None,
            priority: 0,
        })
        .unwrap()
    {
        Response::Ran { kernel_id, iterations, avg_power_w, total_time_s, tier, .. } => {
            assert_eq!(&kernel_id, id);
            assert_eq!(iterations, 3);
            assert!(avg_power_w > 0.0 && total_time_s > 0.0);
            assert_eq!(tier, "model", "healthy machine stays on the model rung");
        }
        other => panic!("expected Ran, got {other:?}"),
    }

    match client.call(&Request::Stats).unwrap() {
        Response::Stats(s) => {
            assert!(s.requests_total >= 3);
            assert_eq!(s.requests_by_kind["select"], 1);
            assert_eq!(s.requests_by_kind["run"], 1);
            assert_eq!(s.cache_misses, 1);
            assert_eq!(s.active_sessions, 1);
            assert_eq!(s.degradation_tallies["model"], 1);
            // Latencies record at ns granularity and round up to µs:
            // with requests served, the median can never report as 0
            // (the PR-8 reservoir bug, where sub-µs warm selects
            // truncated to 0 µs).
            assert!(s.p50_latency_us > 0, "served requests must yield a nonzero p50");
            assert!(s.p99_latency_us >= s.p50_latency_us);
            assert_eq!(s.protocol_errors, 0);
            // No coordinator configured: the lease side of the snapshot
            // reports standalone, with the configured cap and no journal.
            assert_eq!(s.lease_state, "standalone");
            assert_eq!(s.lease_budget_w, 120.0);
            assert_eq!(s.degraded_entries, 0);
            assert_eq!(s.lease_renews, 0);
            assert_eq!(s.p50_renew_latency_us, 0);
            assert_eq!(s.journal_appends, 0);
            assert_eq!(s.journal_replayed, 0);
        }
        other => panic!("expected Stats, got {other:?}"),
    }

    assert!(matches!(client.call(&Request::Bye).unwrap(), Response::Bye));
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn batch_matches_singles_and_oversized_batch_is_overloaded() {
    let (addr, handle, join) = spawn(ServeConfig { max_batch: 4, ..ServeConfig::default() });
    let mut client = Client::connect(&addr).unwrap();

    let ids = kernel_ids(4);
    let batch = match client
        .call(&Request::Batch { kernel_ids: ids.clone(), deadline_ms: None, priority: 0 })
        .unwrap()
    {
        Response::BatchSelected { selections } => selections,
        other => panic!("expected BatchSelected, got {other:?}"),
    };
    assert_eq!(batch.len(), ids.len());
    for (id, got) in ids.iter().zip(&batch) {
        match client
            .call(&Request::Select { kernel_id: id.clone(), deadline_ms: None, priority: 0 })
            .unwrap()
        {
            Response::Selected(single) => assert_eq!(&single, got),
            other => panic!("expected Selected, got {other:?}"),
        }
    }

    match client
        .call(&Request::Batch { kernel_ids: kernel_ids(5), deadline_ms: None, priority: 0 })
        .unwrap()
    {
        Response::Overloaded { load, limit } => {
            assert_eq!((load, limit), (5, 4));
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn unknown_kernel_is_a_typed_error_not_a_dropped_session() {
    let (addr, handle, join) = spawn(ServeConfig::default());
    let mut client = Client::connect(&addr).unwrap();
    match client
        .call(&Request::Select {
            kernel_id: "no/such/kernel".into(),
            deadline_ms: None,
            priority: 0,
        })
        .unwrap()
    {
        Response::Error { code, detail } => {
            assert_eq!(code, "unknown-kernel");
            assert!(detail.contains("no/such/kernel"));
        }
        other => panic!("expected Error, got {other:?}"),
    }
    // The session survives a domain error.
    assert!(matches!(client.call(&Request::Hello).unwrap(), Response::Welcome { .. }));
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn admission_control_rejects_with_typed_overloaded() {
    let (addr, handle, join) = spawn(ServeConfig { max_sessions: 1, ..ServeConfig::default() });
    let mut first = Client::connect(&addr).unwrap();
    assert!(matches!(first.call(&Request::Hello).unwrap(), Response::Welcome { .. }));

    // The second connection must be answered with Overloaded, not queued.
    let mut second = Client::connect(&addr).unwrap();
    let resp: Option<Response> = {
        let stream = second.stream_mut();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        acs_serve::read_frame_blocking(stream).unwrap()
    };
    match resp {
        Some(Response::Overloaded { load, limit }) => {
            assert_eq!(limit, 1);
            assert!(load > limit);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn report_reshuffles_budgets_across_sessions() {
    let (addr, handle, join) = spawn(ServeConfig {
        policy: ArbiterPolicy::DemandProportional,
        global_cap_w: 100.0,
        ..ServeConfig::default()
    });
    let mut a = Client::connect(&addr).unwrap();
    assert!(matches!(a.call(&Request::Hello).unwrap(), Response::Welcome { .. }));
    let mut b = Client::connect(&addr).unwrap();
    assert!(matches!(b.call(&Request::Hello).unwrap(), Response::Welcome { .. }));

    // a reports plenty of headroom (low demand), b reports none: the
    // arbiter should tilt the discretionary pool toward b.
    match a.call(&Request::Report { residual_w: 30.0, feedback: None }).unwrap() {
        Response::Budget { budget_w } => {
            assert!(budget_w < 50.0, "satisfied node keeps {budget_w} W of 100 W");
            // The demand floor: half an equal share is guaranteed.
            assert!(budget_w >= 25.0 - 1e-9);
        }
        other => panic!("expected Budget, got {other:?}"),
    }
    match b.call(&Request::Report { residual_w: 0.0, feedback: None }).unwrap() {
        Response::Budget { budget_w } => {
            assert!(budget_w > 50.0, "hungry node got only {budget_w} W of 100 W");
        }
        other => panic!("expected Budget, got {other:?}"),
    }

    // The reshuffle is visible in server metrics.
    match a.call(&Request::Stats).unwrap() {
        Response::Stats(s) => assert!(s.arbiter_rebalances >= 1),
        other => panic!("expected Stats, got {other:?}"),
    }

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn budget_reshuffle_rewrites_selection() {
    // One node: gets the whole 40 W cap. A second node joins: the budget
    // halves, and the same kernel must re-select under 20 W — the
    // Section III-C dynamic-constraint property, driven by the arbiter.
    let (addr, handle, join) = spawn(ServeConfig { global_cap_w: 40.0, ..ServeConfig::default() });
    let id = &kernel_ids(1)[0];

    let mut a = Client::connect(&addr).unwrap();
    let generous = match a
        .call(&Request::Select { kernel_id: id.clone(), deadline_ms: None, priority: 0 })
        .unwrap()
    {
        Response::Selected(s) => s,
        other => panic!("expected Selected, got {other:?}"),
    };
    assert!((generous.budget_w - 40.0).abs() < 1e-9);

    let mut b = Client::connect(&addr).unwrap();
    assert!(matches!(b.call(&Request::Hello).unwrap(), Response::Welcome { .. }));

    // Session a's budget drops at its next poll; selections follow.
    let halved = loop {
        match a
            .call(&Request::Select { kernel_id: id.clone(), deadline_ms: None, priority: 0 })
            .unwrap()
        {
            Response::Selected(s) if (s.budget_w - 20.0).abs() < 1e-9 => break s,
            Response::Selected(_) => std::thread::sleep(Duration::from_millis(10)),
            other => panic!("expected Selected, got {other:?}"),
        }
    };
    assert!(
        halved.predicted_power_w <= generous.predicted_power_w + 1e-9,
        "tighter budget cannot select more predicted power"
    );

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn eaddrinuse_is_a_typed_bind_error() {
    let held = Server::bind(ServeConfig::default(), model()).expect("first bind succeeds");
    let port = held.local_addr().port();
    match Server::bind(ServeConfig { port, ..ServeConfig::default() }, model()) {
        Err(ServeError::Bind { addr, detail }) => {
            assert!(addr.ends_with(&format!(":{port}")));
            assert!(!detail.is_empty());
        }
        Ok(_) => panic!("second bind of port {port} unexpectedly succeeded"),
        Err(other) => panic!("expected Bind error, got {other}"),
    }
}

#[test]
fn hostile_frame_gets_typed_error_and_counts() {
    let (addr, handle, join) = spawn(ServeConfig::default());
    let mut client = Client::connect(&addr).unwrap();

    // An oversized length prefix straight onto the wire.
    let stream = client.stream_mut();
    stream.write_all(&u32::MAX.to_be_bytes()).unwrap();
    stream.flush().unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    match acs_serve::read_frame_blocking::<_, Response>(stream) {
        Ok(Some(Response::Error { code, .. })) => assert_eq!(code, "oversized"),
        other => panic!("expected typed Error response, got {other:?}"),
    }
    assert!(handle.protocol_errors() >= 1);

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn expired_deadlines_shed_and_misses_surface_in_stats() {
    let (addr, handle, join) = spawn(ServeConfig::default());
    let mut client = Client::connect(&addr).unwrap();
    assert!(matches!(client.call(&Request::Hello).unwrap(), Response::Welcome { .. }));
    let id = &kernel_ids(1)[0];

    // A zero deadline has expired before service: the gate answers with
    // one typed frame before any selection work, even at brownout level 0
    // (the controller is disabled here — brownout_us stays 0).
    match client
        .call(&Request::Select { kernel_id: id.clone(), deadline_ms: Some(0), priority: 9 })
        .unwrap()
    {
        Response::ShedDeadline { deadline_ms, priority, brownout_level } => {
            assert_eq!(deadline_ms, 0);
            assert_eq!(priority, 9, "the shed frame echoes the request's priority");
            assert_eq!(brownout_level, 0);
        }
        other => panic!("expected ShedDeadline, got {other:?}"),
    }
    assert_eq!(handle.sheds(), 1);

    // A positive deadline is served below full brownout — and a run long
    // enough to blow through it records a miss for the served request.
    match client
        .call(&Request::Run {
            kernel_id: id.clone(),
            iterations: 20_000,
            idem: None,
            deadline_ms: Some(1),
            priority: 0,
        })
        .unwrap()
    {
        Response::Ran { iterations, .. } => assert_eq!(iterations, 20_000),
        other => panic!("expected Ran, got {other:?}"),
    }
    assert_eq!(handle.sheds(), 1, "a served request is not a shed");
    assert_eq!(handle.deadline_misses(), 1);

    // Requests without a deadline never enter the gate: the old-client
    // wire shape is untouched by the overload machinery.
    match client
        .call(&Request::Select { kernel_id: id.clone(), deadline_ms: None, priority: 0 })
        .unwrap()
    {
        Response::Selected(_) => {}
        other => panic!("expected Selected, got {other:?}"),
    }

    // All four overload counters flow through the wire snapshot.
    match client.call(&Request::Stats).unwrap() {
        Response::Stats(s) => {
            assert_eq!(s.sheds, 1);
            assert_eq!(s.deadline_misses, 1);
            assert_eq!(s.brownout_level, 0, "disabled controller never leaves level 0");
            assert_eq!(s.evicted_shards, 0, "standalone server observes no evictions");
        }
        other => panic!("expected Stats, got {other:?}"),
    }

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn shutdown_poison_drains_the_server() {
    let (addr, handle, join) = spawn(ServeConfig::default());
    let mut bystander = Client::connect(&addr).unwrap();
    assert!(matches!(bystander.call(&Request::Hello).unwrap(), Response::Welcome { .. }));

    let mut killer = Client::connect(&addr).unwrap();
    assert!(matches!(killer.call(&Request::Shutdown).unwrap(), Response::ShuttingDown));
    assert!(handle.is_shutting_down());
    join.join().unwrap();

    // The drained listener no longer accepts: either the connection is
    // refused outright or the new socket sees EOF/ECONNRESET on use.
    match Client::connect(&addr) {
        Err(_) => {}
        Ok(mut c) => match c.call(&Request::Hello) {
            Err(_) => {}
            Ok(resp) => panic!("server answered {resp:?} after shutdown"),
        },
    }
    // The bystander's session ended without an unsolicited frame.
    let eof: Option<Response> = {
        let stream = bystander.stream_mut();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        acs_serve::read_frame_blocking(stream).unwrap()
    };
    assert!(eof.is_none(), "session must close silently on shutdown, got {eof:?}");
}
