//! Property tests for the deadline-aware shedding rule (DESIGN.md §17).
//!
//! The shed decision is a pure function of `(brownout_level, deadline_ms,
//! priority, est_p99_us)`, which makes its contract directly provable
//! under random inputs:
//!
//! - **priority-monotone**: raising a request's priority class can never
//!   get it shed when a lower priority would have been served,
//! - **deadline-gated**: requests without a deadline are never shed (old
//!   clients opt out by construction; `deadline_ms: 0` always sheds),
//! - **brownout-gated**: predictive shedding only engages at the top
//!   brownout level, and the level itself is monotone in observed p99.

use acs_serve::{brownout_level_for, required_priority, should_shed};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// If a request is served at priority `p`, it is served at every
    /// priority above `p` (same level, deadline, and estimate): shedding
    /// never inverts the priority order.
    #[test]
    fn shedding_is_monotone_in_priority(
        level in 0u8..=3,
        deadline_ms in 1u64..10_000,
        priority in 0u8..255,
        est_p99_us in 0u64..100_000_000,
    ) {
        let lower = should_shed(level, deadline_ms, priority, est_p99_us);
        let higher = should_shed(level, deadline_ms, priority + 1, est_p99_us);
        prop_assert!(
            lower || !higher,
            "priority {} served but {} shed (level {level}, deadline {deadline_ms} ms)",
            priority, priority + 1
        );
    }

    /// The required-priority threshold never *decreases* as brownout
    /// deepens: a request admitted at level L is admitted at every level
    /// below L.
    #[test]
    fn deeper_brownout_never_admits_what_lighter_brownout_shed(
        level in 0u8..3,
        deadline_ms in 1u64..10_000,
        est_p99_us in 0u64..100_000_000,
    ) {
        prop_assert!(
            required_priority(level, deadline_ms, est_p99_us)
                <= required_priority(level + 1, deadline_ms, est_p99_us),
            "threshold dropped from level {} to {}", level, level + 1
        );
    }

    /// A zero deadline is always shed (it cannot be met by definition);
    /// the maximum priority class 255 survives everything else.
    #[test]
    fn zero_deadlines_always_shed_and_max_priority_always_survives(
        level in 0u8..=3,
        deadline_ms in 1u64..10_000,
        priority in 0u8..=255,
        est_p99_us in 0u64..100_000_000,
    ) {
        prop_assert!(should_shed(level, 0, priority, est_p99_us));
        prop_assert!(!should_shed(level, deadline_ms, 255, est_p99_us));
    }

    /// The brownout ladder is monotone in observed p99 and quiet at or
    /// below the target.
    #[test]
    fn brownout_level_is_monotone_in_p99(
        target_us in 1u64..1_000_000,
        p99_a in 0u64..10_000_000,
        p99_b in 0u64..10_000_000,
    ) {
        prop_assert_eq!(brownout_level_for(target_us, 0), 0);
        prop_assert_eq!(brownout_level_for(target_us, target_us), 0);
        let (lo, hi) = (p99_a.min(p99_b), p99_a.max(p99_b));
        prop_assert!(
            brownout_level_for(target_us, lo) <= brownout_level_for(target_us, hi),
            "level fell as p99 rose ({} -> {})", lo, hi
        );
    }
}
