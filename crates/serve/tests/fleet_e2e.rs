//! Fleet end-to-end tests: real shard servers leasing their power caps
//! from a real coordinator over TCP, with the failure modes the lease
//! protocol exists for — a SIGKILLed coordinator restarting from its
//! journal, a SIGKILLed shard decaying to its floor encumbrance, and a
//! network partition (injected by the chaos proxy) driving a shard into
//! degraded mode and back out.
//!
//! The invariant checked throughout, at every sampled instant: the sum of
//! the caps the shards actually enforce never exceeds the coordinator's
//! global cap. Crashes are in-process (`simulate_crash`), mirroring
//! `recovery_e2e.rs`; `bench_fleet` does the real out-of-process SIGKILL.

use acs_core::{train, KernelProfile, TrainedModel, TrainingParams};
use acs_serve::{
    ArbiterPolicy, ChaosPlan, ChaosProxy, Client, Coordinator, CoordinatorConfig,
    CoordinatorHandle, Request, Response, ServeConfig, Server, ServerHandle,
};
use acs_sim::{FamilyId, Machine};
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

fn model() -> TrainedModel {
    static MODEL: OnceLock<TrainedModel> = OnceLock::new();
    MODEL
        .get_or_init(|| {
            let machine = Machine::new(2014);
            let profiles: Vec<KernelProfile> = acs_kernels::all_kernel_instances()
                .iter()
                .take(16)
                .map(|k| KernelProfile::collect(&machine, k))
                .collect();
            train(&profiles, TrainingParams::default()).expect("training succeeds")
        })
        .clone()
}

fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("acs-fleet-{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const GLOBAL_CAP_W: f64 = 90.0;
const FLOOR_W: f64 = 2.0;

fn coordinator_config(journal: Option<PathBuf>) -> CoordinatorConfig {
    CoordinatorConfig {
        host: "127.0.0.1".into(),
        port: 0,
        global_cap_w: GLOBAL_CAP_W,
        policy: ArbiterPolicy::DemandProportional,
        ttl_ticks: 20,
        tick_ms: 25, // TTL = 500 ms of silence
        floor_w: FLOOR_W,
        evict_after_ticks: 0,
        journal,
        journal_sync: false,
    }
}

fn spawn_coordinator(
    config: CoordinatorConfig,
) -> (String, CoordinatorHandle, std::thread::JoinHandle<()>) {
    let coordinator = Coordinator::bind(config).expect("coordinator binds");
    let addr = coordinator.local_addr().to_string();
    let handle = coordinator.handle();
    let join = std::thread::spawn(move || coordinator.run().expect("coordinator runs"));
    (addr, handle, join)
}

fn spawn_shard_on(
    family: FamilyId,
    coordinator: &str,
    demand_w: f64,
) -> (String, ServerHandle, std::thread::JoinHandle<()>) {
    let config = ServeConfig {
        family,
        global_cap_w: demand_w,
        policy: ArbiterPolicy::EqualShare,
        coordinator: Some(coordinator.to_string()),
        lease_floor_w: FLOOR_W,
        renew_ms: 25,
        ..ServeConfig::default()
    };
    let server = Server::bind(config, model()).expect("shard binds");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("shard runs"));
    (addr, handle, join)
}

fn spawn_shard(
    coordinator: &str,
    demand_w: f64,
) -> (String, ServerHandle, std::thread::JoinHandle<()>) {
    spawn_shard_on(FamilyId::Trinity, coordinator, demand_w)
}

/// Poll `check` until it holds or `timeout` passes.
fn wait_until(timeout: Duration, mut check: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    loop {
        if check() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn fleet_cap_w(shards: &[ServerHandle]) -> f64 {
    shards.iter().map(|s| s.lease_cap_w()).sum()
}

#[test]
fn three_shards_converge_to_the_global_cap_without_ever_exceeding_it() {
    let (addr, coord, coord_join) = spawn_coordinator(coordinator_config(None));
    let shards: Vec<_> = (0..3).map(|_| spawn_shard(&addr, 60.0)).collect();
    let handles: Vec<ServerHandle> = shards.iter().map(|(_, h, _)| h.clone()).collect();

    assert!(
        wait_until(Duration::from_secs(10), || {
            handles.iter().all(|h| h.lease_state() == "leased")
        }),
        "all shards lease within the deadline"
    );
    // Commit-on-contact ramping converges to the full pool at quiescence;
    // conservation holds at every instant on the way there.
    assert!(
        wait_until(Duration::from_secs(10), || {
            (fleet_cap_w(&handles) - GLOBAL_CAP_W).abs() < 1e-6
        }),
        "fleet converges to the global cap, got {} W",
        fleet_cap_w(&handles)
    );
    for _ in 0..20 {
        assert!(fleet_cap_w(&handles) <= GLOBAL_CAP_W + 1e-9);
        let stats = coord.stats();
        assert_eq!(stats.overshoot_w, 0.0);
        assert!(stats.live_committed_w + stats.encumbered_w <= GLOBAL_CAP_W + 1e-9);
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = coord.stats();
    assert_eq!(stats.live_leases, 3);
    assert!(stats.grants >= 3);
    assert!(stats.renews >= 3);

    // The lease shows up in the shard's own STATS frame: state, budget,
    // renew counters, and renew latency quantiles.
    let mut client = Client::connect(&shards[0].0).unwrap();
    match client.call(&Request::Stats).unwrap() {
        Response::Stats(s) => {
            assert_eq!(s.lease_state, "leased");
            assert!(s.lease_budget_w > FLOOR_W && s.lease_budget_w <= GLOBAL_CAP_W);
            assert_eq!(s.degraded_entries, 0);
            assert!(s.lease_renews >= 1);
            assert!(s.p99_renew_latency_us >= s.p50_renew_latency_us);
        }
        other => panic!("expected Stats, got {other:?}"),
    }
    drop(client);

    // Clean shard shutdown releases the leases; the pool refills.
    for (_, handle, join) in shards {
        handle.shutdown();
        join.join().unwrap();
    }
    assert!(
        wait_until(Duration::from_secs(5), || coord.stats().live_leases == 0),
        "released leases leave the table"
    );
    let stats = coord.stats();
    assert_eq!(stats.live_committed_w + stats.encumbered_w, 0.0);
    coord.shutdown();
    coord_join.join().unwrap();
}

#[test]
fn heterogeneous_family_shards_share_one_budget_and_warm_their_own_caches() {
    // One coordinator arbitrating three shards that each serve a
    // *different* machine family. The fleet budget invariant is
    // family-blind — watts are watts — but every shard profiles kernels
    // on its own family's machine, so each keeps a private profile
    // cache and its selections reflect its own hardware.
    let (addr, coord, coord_join) = spawn_coordinator(coordinator_config(None));
    let families = [FamilyId::BigCore, FamilyId::LowPower, FamilyId::AccelHybrid];
    let shards: Vec<_> = families.iter().map(|&f| spawn_shard_on(f, &addr, 60.0)).collect();
    let handles: Vec<ServerHandle> = shards.iter().map(|(_, h, _)| h.clone()).collect();

    assert!(
        wait_until(Duration::from_secs(10), || {
            handles.iter().all(|h| h.lease_state() == "leased")
        }),
        "all family shards lease within the deadline"
    );
    assert!(
        wait_until(Duration::from_secs(10), || {
            (fleet_cap_w(&handles) - GLOBAL_CAP_W).abs() < 1e-6
        }),
        "the heterogeneous fleet converges to the global cap, got {} W",
        fleet_cap_w(&handles)
    );
    // Conservation at sampled instants, exactly as in the homogeneous
    // case: heterogeneity must not open any overshoot window.
    for _ in 0..20 {
        assert!(fleet_cap_w(&handles) <= GLOBAL_CAP_W + 1e-9);
        let stats = coord.stats();
        assert_eq!(stats.overshoot_w, 0.0);
        assert!(stats.live_committed_w + stats.encumbered_w <= GLOBAL_CAP_W + 1e-9);
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(coord.stats().live_leases, 3);

    // Drive the same kernel through every shard: the first Select is a
    // profile-cache miss (collected on that shard's family machine),
    // the repeats are hits. STATS reports the per-shard hit rate.
    let kernel_id = acs_kernels::all_kernel_instances()[0].id();
    let mut predicted = Vec::new();
    for (shard_addr, _, _) in &shards {
        let mut client = Client::connect(shard_addr).unwrap();
        let mut last = None;
        for _ in 0..4 {
            let select =
                Request::Select { kernel_id: kernel_id.clone(), deadline_ms: None, priority: 0 };
            match client.call(&select).unwrap() {
                Response::Selected(s) => {
                    assert_eq!(s.kernel_id, kernel_id);
                    assert!(s.predicted_power_w > 0.0 && s.predicted_perf > 0.0);
                    last = Some(s);
                }
                other => panic!("expected Selected, got {other:?}"),
            }
        }
        predicted.push(last.unwrap());
        match client.call(&Request::Stats).unwrap() {
            Response::Stats(s) => {
                assert_eq!(s.lease_state, "leased");
                assert_eq!(s.cache_misses, 1, "first Select profiles the kernel");
                assert_eq!(s.cache_hits, 3, "repeat Selects hit the shard's cache");
                assert!((s.cache_hit_rate - 0.75).abs() < 1e-12);
            }
            other => panic!("expected Stats, got {other:?}"),
        }
    }
    // The shards are genuinely heterogeneous: the same kernel under the
    // same arbitration does not predict identically on every family.
    let all_same = predicted.iter().all(|s| {
        s.predicted_power_w == predicted[0].predicted_power_w
            && s.predicted_perf == predicted[0].predicted_perf
    });
    assert!(!all_same, "family machines must differentiate the predictions: {predicted:?}");

    for (_, handle, join) in shards {
        handle.shutdown();
        join.join().unwrap();
    }
    assert!(
        wait_until(Duration::from_secs(5), || coord.stats().live_leases == 0),
        "released leases leave the table"
    );
    coord.shutdown();
    coord_join.join().unwrap();
}

#[test]
fn coordinator_sigkill_and_restart_readopts_shards_without_double_granting() {
    let dir = scratch("failover");
    let journal = dir.join("coordinator.journal");
    let (addr, coord, coord_join) = spawn_coordinator(CoordinatorConfig {
        journal: Some(journal.clone()),
        ..coordinator_config(None)
    });
    let port: u16 = addr.rsplit(':').next().unwrap().parse().unwrap();

    let shards: Vec<_> = (0..2).map(|_| spawn_shard(&addr, 60.0)).collect();
    let handles: Vec<ServerHandle> = shards.iter().map(|(_, h, _)| h.clone()).collect();
    assert!(
        wait_until(Duration::from_secs(10), || {
            handles.iter().all(|h| h.lease_state() == "leased")
                && (fleet_cap_w(&handles) - GLOBAL_CAP_W).abs() < 1e-6
        }),
        "fleet converges before the crash"
    );

    // SIGKILL the coordinator. The shards keep running: every missed
    // renewal decays their caps, so the fleet sum can only fall.
    coord.simulate_crash();
    coord_join.join().unwrap();
    let mut max_during_outage: f64 = 0.0;
    for _ in 0..30 {
        max_during_outage = max_during_outage.max(fleet_cap_w(&handles));
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        max_during_outage <= GLOBAL_CAP_W + 1e-9,
        "fleet sum {} W exceeded the cap during the outage",
        max_during_outage
    );
    assert!(
        handles.iter().any(|h| h.degraded_entries() >= 1),
        "missed renewals drive shards into degraded mode"
    );

    // Restart on the same port from the journal: the replayed table holds
    // the same leases, so returning shards are re-adopted, not granted
    // fresh budget on top of the old (which would double-spend the pool).
    let (addr2, coord, coord_join) = spawn_coordinator(CoordinatorConfig {
        port,
        journal: Some(journal),
        ..coordinator_config(None)
    });
    assert_eq!(addr2, addr);
    let recovery = coord.recovery().expect("journal replayed");
    assert!(recovery.replayed >= 2, "the grants were journaled");

    assert!(
        wait_until(Duration::from_secs(10), || {
            handles.iter().all(|h| h.lease_state() == "leased")
                && (fleet_cap_w(&handles) - GLOBAL_CAP_W).abs() < 1e-6
        }),
        "fleet re-converges after failover, got {} W across states {:?}",
        fleet_cap_w(&handles),
        handles.iter().map(|h| h.lease_state()).collect::<Vec<_>>()
    );
    let stats = coord.stats();
    assert_eq!(stats.live_leases, 2);
    assert_eq!(stats.overshoot_w, 0.0);
    assert!(stats.journal_replayed >= 2);

    for (_, handle, join) in shards {
        handle.shutdown();
        join.join().unwrap();
    }
    coord.shutdown();
    coord_join.join().unwrap();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn a_sigkilled_shards_lease_expires_to_the_floor_and_frees_the_rest() {
    let (addr, coord, coord_join) = spawn_coordinator(coordinator_config(None));
    let (_, alive, alive_join) = spawn_shard(&addr, 60.0);
    let (_, victim, victim_join) = spawn_shard(&addr, 60.0);

    assert!(
        wait_until(Duration::from_secs(10), || {
            alive.lease_state() == "leased" && victim.lease_state() == "leased"
        }),
        "both shards lease"
    );

    // SIGKILL the victim: no Release frame, its lease just goes silent.
    victim.simulate_crash();
    victim_join.join().unwrap();

    // After the TTL the coordinator expires the lease down to the floor
    // encumbrance and hands the freed watts to the survivor.
    assert!(
        wait_until(Duration::from_secs(10), || {
            let stats = coord.stats();
            stats.live_leases == 1 && stats.encumbered_leases == 1
        }),
        "the silent lease expires"
    );
    let stats = coord.stats();
    assert!(stats.encumbered_w <= FLOOR_W + 1e-9);
    assert!(stats.live_committed_w + stats.encumbered_w <= GLOBAL_CAP_W + 1e-9);
    assert!(
        wait_until(Duration::from_secs(10), || {
            alive.lease_cap_w() >= GLOBAL_CAP_W - FLOOR_W - 1e-6
        }),
        "the survivor absorbs the freed budget, got {} W",
        alive.lease_cap_w()
    );

    alive.shutdown();
    alive_join.join().unwrap();
    coord.shutdown();
    coord_join.join().unwrap();
}

#[test]
fn an_evicted_shards_floor_is_reclaimed_and_a_replacement_readmits() {
    // Same SIGKILL as above, but with the health-check horizon armed:
    // 5 ticks past expiry the coordinator *evicts* the silent lease,
    // reclaiming even the floor encumbrance the expiry path parks forever.
    let config = CoordinatorConfig { evict_after_ticks: 5, ..coordinator_config(None) };
    let (addr, coord, coord_join) = spawn_coordinator(config);
    let (alive_addr, alive, alive_join) = spawn_shard(&addr, 60.0);
    let (_, victim, victim_join) = spawn_shard(&addr, 60.0);

    assert!(
        wait_until(Duration::from_secs(10), || {
            alive.lease_state() == "leased" && victim.lease_state() == "leased"
        }),
        "both shards lease"
    );

    victim.simulate_crash();
    victim_join.join().unwrap();

    // TTL expires the lease, then the horizon evicts it outright: no
    // encumbered entry survives, and the coordinator counts the eviction.
    assert!(
        wait_until(Duration::from_secs(10), || {
            let stats = coord.stats();
            stats.evicted_shards >= 1 && stats.encumbered_leases == 0 && stats.live_leases == 1
        }),
        "the silent lease is evicted, not floor-parked: {:?}",
        coord.stats()
    );
    assert_eq!(coord.stats().encumbered_w, 0.0, "eviction reclaims the floor watts");

    // The survivor absorbs the FULL global cap — not cap minus floor, the
    // ceiling the expiry-only path converges to.
    assert!(
        wait_until(Duration::from_secs(10), || { alive.lease_cap_w() >= GLOBAL_CAP_W - 1e-6 }),
        "the survivor absorbs the whole cap, got {} W",
        alive.lease_cap_w()
    );

    // A replacement shard re-admits against the reclaimed pool as a fresh
    // grant — the evicted id is gone, not recycled.
    let (_, replacement, replacement_join) = spawn_shard(&addr, 60.0);
    assert!(
        wait_until(Duration::from_secs(10), || {
            replacement.lease_state() == "leased" && coord.stats().live_leases == 2
        }),
        "the replacement re-admits"
    );
    let stats = coord.stats();
    assert!(stats.live_committed_w + stats.encumbered_w <= GLOBAL_CAP_W + 1e-9);

    // The overload counters flow through the survivor's wire snapshot:
    // this shard was never shed, never missed, never evicted.
    let mut client = Client::connect(&alive_addr).unwrap();
    assert!(matches!(client.call(&Request::Hello).unwrap(), Response::Welcome { .. }));
    match client.call(&Request::Stats).unwrap() {
        Response::Stats(s) => {
            assert_eq!(s.sheds, 0);
            assert_eq!(s.deadline_misses, 0);
            assert_eq!(s.brownout_level, 0);
            assert_eq!(s.evicted_shards, 0, "the survivor's own lease was never evicted");
        }
        other => panic!("expected Stats, got {other:?}"),
    }

    alive.shutdown();
    alive_join.join().unwrap();
    replacement.shutdown();
    replacement_join.join().unwrap();
    coord.shutdown();
    coord_join.join().unwrap();
}

#[test]
fn a_partitioned_shard_degrades_below_its_last_grant_and_recovers() {
    let (coord_addr, coord, coord_join) = spawn_coordinator(coordinator_config(None));

    // The shard reaches its coordinator through the chaos proxy, which
    // can blackhole both directions while keeping connections open.
    let proxy =
        ChaosProxy::bind("127.0.0.1:0", &coord_addr, ChaosPlan::quiet(7)).expect("proxy binds");
    let proxy_addr = proxy.local_addr().to_string();
    let proxy_handle = proxy.handle();
    let proxy_join = std::thread::spawn(move || proxy.run().expect("proxy runs"));

    let (_, shard, shard_join) = spawn_shard(&proxy_addr, 60.0);
    assert!(
        wait_until(Duration::from_secs(10), || shard.lease_state() == "leased"),
        "the shard leases through the quiet proxy"
    );
    let last_grant = shard.lease_cap_w();
    assert!(last_grant > FLOOR_W);

    // Partition for ~32 renewal intervals: every renewal inside the
    // window times out, so the cap decays — but never above the last
    // grant, and never below min(floor, last grant).
    proxy_handle.partition(800);
    assert!(
        wait_until(Duration::from_secs(5), || shard.lease_state() == "degraded"),
        "missed renewals enter degraded mode"
    );
    assert!(
        wait_until(Duration::from_millis(600), || shard.lease_cap_w() < last_grant - 1e-9),
        "the cap decays during the partition, still {} W",
        shard.lease_cap_w()
    );
    let deadline = Instant::now() + Duration::from_millis(150);
    while Instant::now() < deadline {
        let cap = shard.lease_cap_w();
        assert!(cap <= last_grant + 1e-9, "degraded cap {cap} exceeds last grant {last_grant}");
        assert!(cap >= FLOOR_W.min(last_grant) - 1e-9, "degraded cap {cap} fell below the floor");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(shard.degraded_entries() >= 1);

    // The window closes; renewals flow again and the lease recovers.
    assert!(
        wait_until(Duration::from_secs(10), || {
            shard.lease_state() == "leased" && (shard.lease_cap_w() - GLOBAL_CAP_W).abs() < 1e-6
        }),
        "the shard recovers after the partition, state {} cap {} W",
        shard.lease_state(),
        shard.lease_cap_w()
    );
    assert!(proxy_handle.stats().blackholed > 0, "the partition actually swallowed traffic");

    shard.shutdown();
    shard_join.join().unwrap();
    proxy_handle.shutdown();
    proxy_join.join().unwrap();
    coord.shutdown();
    coord_join.join().unwrap();
}
