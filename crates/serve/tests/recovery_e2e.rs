//! Kill-and-restart end-to-end tests for the recovery journal.
//!
//! The crash is in-process ([`ServerHandle::simulate_crash`]): a test
//! cannot SIGKILL itself, and `simulate_crash` reproduces exactly what a
//! SIGKILL leaves behind — sessions die without journaling `Leave`, so
//! the journal's tail still shows them admitted. (`bench_recovery` does
//! the real out-of-process SIGKILL; this file is the deterministic gate.)
//!
//! The central assertion: a client that drove half its request stream,
//! lost the server, and finished the stream against a restarted server
//! with `--journal` sees **byte-identical** responses to a client that
//! drove the whole stream against one uninterrupted server.

use acs_core::{train, KernelProfile, TrainedModel, TrainingParams};
use acs_serve::{
    ArbiterPolicy, Client, Journal, JournalEntry, ReportFeedback, Request, Response, ServeConfig,
    ServeError, Server, ServerHandle,
};
use acs_sim::Machine;
use std::path::PathBuf;
use std::sync::OnceLock;

fn model() -> TrainedModel {
    static MODEL: OnceLock<TrainedModel> = OnceLock::new();
    MODEL
        .get_or_init(|| {
            let machine = Machine::new(2014);
            let profiles: Vec<KernelProfile> = acs_kernels::all_kernel_instances()
                .iter()
                .take(16)
                .map(|k| KernelProfile::collect(&machine, k))
                .collect();
            train(&profiles, TrainingParams::default()).expect("training succeeds")
        })
        .clone()
}

fn spawn(config: ServeConfig) -> (String, ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(config, model()).expect("bind succeeds");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server runs"));
    (addr, handle, join)
}

fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("acs-recovery-{test}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(journal: Option<PathBuf>) -> ServeConfig {
    ServeConfig {
        policy: ArbiterPolicy::DemandProportional,
        global_cap_w: 90.0,
        journal,
        ..ServeConfig::default()
    }
}

/// The deterministic request stream both runs drive: selections over six
/// kernels with a residual report after every other one. `Run` requests
/// are excluded on purpose — their responses depend on per-session
/// runtime noise state, which a reconnect legitimately resets; the
/// recovery contract covers *selections and budgets* (DESIGN.md §12).
fn request_stream() -> Vec<Request> {
    let ids: Vec<String> =
        acs_kernels::all_kernel_instances().iter().take(6).map(|k| k.id()).collect();
    let mut stream = Vec::new();
    for (i, id) in ids.iter().enumerate() {
        stream.push(Request::Select { kernel_id: id.clone(), deadline_ms: None, priority: 0 });
        if i % 2 == 1 {
            stream.push(Request::Report { residual_w: 4.0 + i as f64, feedback: None });
        }
        if i % 3 == 2 {
            stream.push(Request::Select {
                kernel_id: ids[0].clone(),
                deadline_ms: None,
                priority: 0,
            }); // revisit: warm path
        }
    }
    stream
}

fn drive(client: &mut Client, requests: &[Request]) -> Vec<String> {
    requests.iter().map(|r| serde_json::to_string(&client.call(r).unwrap()).unwrap()).collect()
}

#[test]
fn kill_and_restart_resumes_byte_identical_selections() {
    let dir = scratch("byteident");
    let stream = request_stream();
    let half = stream.len() / 2;

    // Reference: the whole stream against one uninterrupted server.
    let reference = {
        let (addr, handle, join) = spawn(config(None));
        let mut client = Client::connect(&addr).unwrap();
        let log = drive(&mut client, &stream);
        handle.shutdown();
        join.join().unwrap();
        log
    };

    // Interrupted: half the stream, then a crash that skips every clean
    // leave — the journal must end the way SIGKILL leaves it.
    let journal_path = dir.join("serve.journal");
    let mut log = {
        let (addr, handle, join) = spawn(config(Some(journal_path.clone())));
        let mut client = Client::connect(&addr).unwrap();
        let log = drive(&mut client, &stream[..half]);
        handle.simulate_crash();
        join.join().unwrap();
        log
    };

    // Restart on the same journal and finish the stream.
    let (addr, handle, join) = spawn(config(Some(journal_path)));
    let recovery = handle.recovery().expect("a journaled server reports its recovery");
    assert!(recovery.replayed > 0, "the first run journaled entries");
    assert_eq!(recovery.orphaned_sessions.len(), 1, "the crashed session is an orphan");
    assert!(!recovery.warm_kernels.is_empty(), "phase-1 misses were journaled");
    assert_eq!(
        handle.budget_conservation_error_w(),
        0.0,
        "replay + orphan cleanup conserves the cap exactly"
    );

    let mut client = Client::connect(&addr).unwrap();
    // The restarted cache is warm: phase-1 kernels are hits, so the miss
    // counter stays at what warm-up recomputed.
    let warmed = recovery.warm_kernels.len() as u64;
    log.extend(drive(&mut client, &stream[half..]));
    match client.call(&Request::Stats).unwrap() {
        Response::Stats(s) => {
            assert!(
                s.cache_misses >= warmed,
                "warm-up itself recomputes ({} < {warmed})",
                s.cache_misses
            );
            assert!(
                s.cache_hits > 0,
                "phase-2 selects on phase-1 kernels must hit the re-warmed cache"
            );
        }
        other => panic!("expected Stats, got {other:?}"),
    }
    handle.shutdown();
    join.join().unwrap();

    assert_eq!(log, reference, "post-recovery selections/budgets must be byte-identical");
}

#[test]
fn kill_and_restart_replays_adaptation_state_and_rung_tallies() {
    let dir = scratch("adapt");
    let journal_path = dir.join("serve.journal");
    let ids: Vec<String> =
        acs_kernels::all_kernel_instances().iter().take(2).map(|k| k.id()).collect();

    // Phase 1: drive measured feedback hard enough to latch corrections
    // (4 on-model observations form the baseline, then 4 at 2× power /
    // 0.6× perf confirm bias and a cluster mismatch), plus a few `Run`s
    // for rung tallies. Then die like a SIGKILL.
    let (pre_digests, pre_tallies) = {
        let (addr, handle, join) = spawn(config(Some(journal_path.clone())));
        let mut client = Client::connect(&addr).unwrap();
        client.call(&Request::Hello).unwrap();
        for id in &ids {
            let selection = match client
                .call(&Request::Select { kernel_id: id.clone(), deadline_ms: None, priority: 0 })
                .unwrap()
            {
                Response::Selected(s) => s,
                other => panic!("expected Selected, got {other:?}"),
            };
            for step in 0..8u32 {
                let (power_factor, perf_factor) = if step < 4 { (1.0, 1.0) } else { (2.0, 0.6) };
                let feedback = ReportFeedback {
                    kernel_id: selection.kernel_id.clone(),
                    config: selection.config,
                    measured_power_w: selection.predicted_power_w * power_factor,
                    measured_perf: selection.predicted_perf * perf_factor,
                };
                if let Response::Error { code, detail } = client
                    .call(&Request::Report { residual_w: 1.0, feedback: Some(feedback) })
                    .unwrap()
                {
                    panic!("feedback rejected: {code} {detail}")
                }
            }
        }
        for _ in 0..3 {
            client
                .call(&Request::Run {
                    kernel_id: ids[0].clone(),
                    iterations: 1,
                    idem: None,
                    deadline_ms: None,
                    priority: 0,
                })
                .unwrap();
        }
        let tallies = match client.call(&Request::Stats).unwrap() {
            Response::Stats(s) => s.degradation_tallies,
            other => panic!("expected Stats, got {other:?}"),
        };
        assert!(!tallies.is_empty(), "the runs never recorded a rung");
        assert!(handle.adapt_observations() > 0, "feedback never reached a predictor");
        let digests = handle.adapt_digests();
        assert!(!digests.is_empty(), "the session never grew adaptation state");
        handle.simulate_crash();
        join.join().unwrap();
        (digests, tallies)
    };

    // Phase 2: restart on the same journal. Replay must rebuild the
    // orphaned session's predictor bit-for-bit and reconcile the rung
    // tallies into the restarted server's STATS.
    let (addr, handle, join) = spawn(config(Some(journal_path)));
    let recovery = handle.recovery().expect("a journaled server reports its recovery");
    let replayed: Vec<(u64, u64)> =
        recovery.adapt.iter().map(|s| (s.node_id, s.predictor.state_digest())).collect();
    assert_eq!(
        replayed, pre_digests,
        "replayed adaptation state must be byte-identical to the pre-crash state"
    );
    assert_eq!(recovery.rung_tallies, pre_tallies, "replay reconciles the rung tallies");

    let mut client = Client::connect(&addr).unwrap();
    match client.call(&Request::Stats).unwrap() {
        Response::Stats(s) => {
            assert_eq!(
                s.degradation_tallies, pre_tallies,
                "a restarted server's STATS must start from the journaled tallies"
            );
        }
        other => panic!("expected Stats, got {other:?}"),
    }
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn restart_never_reuses_node_ids_and_conserves_budgets() {
    let dir = scratch("nodeids");
    let journal_path = dir.join("serve.journal");

    // Two sessions, both killed by the crash.
    {
        let (addr, handle, join) = spawn(config(Some(journal_path.clone())));
        let mut a = Client::connect(&addr).unwrap();
        let mut b = Client::connect(&addr).unwrap();
        let id_of = |c: &mut Client| match c.call(&Request::Hello).unwrap() {
            Response::Welcome { node_id, .. } => node_id,
            other => panic!("expected Welcome, got {other:?}"),
        };
        assert_eq!((id_of(&mut a), id_of(&mut b)), (1, 2));
        handle.simulate_crash();
        join.join().unwrap();
    }

    let (addr, handle, join) = spawn(config(Some(journal_path)));
    let recovery = handle.recovery().unwrap();
    assert_eq!(recovery.orphaned_sessions, vec![1, 2]);
    assert_eq!(recovery.next_node, 3, "burned ids stay burned");

    let mut c = Client::connect(&addr).unwrap();
    match c.call(&Request::Hello).unwrap() {
        Response::Welcome { node_id, budget_w } => {
            assert_eq!(node_id, 3, "a restarted server never reuses a journaled node id");
            assert!((budget_w - 90.0).abs() < 1e-12, "sole live session owns the whole cap");
        }
        other => panic!("expected Welcome, got {other:?}"),
    }
    assert_eq!(handle.budget_conservation_error_w(), 0.0);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn divergent_journal_is_a_typed_bind_error() {
    let dir = scratch("divergent");
    let journal_path = dir.join("serve.journal");
    // A well-formed line whose recorded epoch cannot be recomputed: replay
    // must refuse with a typed error, not guess at budgets.
    let (journal, _) = Journal::open(&journal_path).unwrap();
    journal.append(&JournalEntry::Admit { node_id: 1, epoch: 42 }).unwrap();
    drop(journal);

    match Server::bind(config(Some(journal_path)), model()) {
        Err(ServeError::Journal(detail)) => {
            assert!(detail.contains("diverged"), "unhelpful detail: {detail}");
        }
        Ok(_) => panic!("bind accepted a divergent journal"),
        Err(other) => panic!("expected ServeError::Journal, got {other}"),
    }
}

#[test]
fn crash_during_phase_two_recovers_again() {
    // Two consecutive crashes against the same journal: recovery composes.
    let dir = scratch("twice");
    let journal_path = dir.join("serve.journal");
    let stream = request_stream();
    let third = stream.len() / 3;

    let reference = {
        let (addr, handle, join) = spawn(config(None));
        let mut client = Client::connect(&addr).unwrap();
        let log = drive(&mut client, &stream);
        handle.shutdown();
        join.join().unwrap();
        log
    };

    let mut log = Vec::new();
    for (phase, range) in
        [&stream[..third], &stream[third..2 * third], &stream[2 * third..]].iter().enumerate()
    {
        let (addr, handle, join) = spawn(config(Some(journal_path.clone())));
        let mut client = Client::connect(&addr).unwrap();
        log.extend(drive(&mut client, range));
        if phase < 2 {
            handle.simulate_crash();
        } else {
            handle.shutdown();
        }
        join.join().unwrap();
    }
    assert_eq!(log, reference, "double recovery still replays byte-identically");
}
