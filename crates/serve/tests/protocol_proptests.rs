//! Property tests for the wire protocol: encode/decode round-trips and
//! hostile-input hardening. Nothing here may panic — every failure mode
//! must surface as a typed [`ProtocolError`].

use acs_serve::{
    read_frame, read_frame_blocking, write_frame, ProtocolError, ReadOutcome, Request, Response,
    Selection, MAX_FRAME_LEN,
};
use acs_sim::Configuration;
use proptest::prelude::*;
use std::io::Cursor;

/// A kernel-id alphabet that exercises slashes, spaces, unicode, and
/// emptiness.
fn kernel_id(n: u64) -> String {
    const POOL: &[&str] = &["LU/Small/lud", "SMC/Large/acc", "κ/üñ/…", "", "a b/c d/e f", "x"];
    let base = POOL[(n % POOL.len() as u64) as usize];
    format!("{base}{}", n / POOL.len() as u64)
}

/// Deadlines for the generators: absent two thirds of the time, so both
/// the old-client (no field) and new-client shapes round-trip.
fn deadline_from(n: u64) -> Option<u64> {
    if n.is_multiple_of(3) {
        Some(n % 5000)
    } else {
        None
    }
}

fn request_from(variant: u8, n: u64, w: f64, extra: &[u64]) -> Request {
    match variant % 8 {
        0 => Request::Hello,
        1 => Request::Select {
            kernel_id: kernel_id(n),
            deadline_ms: deadline_from(n),
            priority: (n % 256) as u8,
        },
        2 => Request::Batch {
            kernel_ids: extra.iter().map(|&e| kernel_id(e)).collect(),
            deadline_ms: deadline_from(n.wrapping_add(1)),
            priority: (n % 256) as u8,
        },
        3 => Request::Run {
            kernel_id: kernel_id(n),
            iterations: n % 17,
            idem: if n.is_multiple_of(2) { Some(n.wrapping_mul(31)) } else { None },
            deadline_ms: deadline_from(n.wrapping_add(2)),
            priority: (n % 256) as u8,
        },
        4 => Request::Report { residual_w: w, feedback: None },
        5 => Request::Stats,
        6 => Request::Bye,
        _ => Request::Shutdown,
    }
}

fn response_from(variant: u8, n: u64, w: f64) -> Response {
    let config = Configuration::all()[(n % Configuration::space_size() as u64) as usize];
    let selection = Selection {
        kernel_id: kernel_id(n),
        cluster: (n % 7) as usize,
        config,
        predicted_power_w: w.abs() + 0.1,
        predicted_perf: w.abs() * 3.0 + 1.0,
        budget_w: w.abs() + 5.0,
    };
    match variant % 9 {
        0 => Response::Welcome { node_id: n, budget_w: w.abs() },
        1 => Response::Selected(selection),
        2 => Response::BatchSelected { selections: vec![selection.clone(), selection] },
        3 => Response::Ran {
            kernel_id: kernel_id(n),
            iterations: n % 9 + 1,
            avg_power_w: w.abs(),
            total_time_s: w.abs() * 0.25,
            config,
            tier: "model+fl(1)".into(),
        },
        4 => Response::Budget { budget_w: w.abs() },
        5 => Response::Overloaded { load: n, limit: n / 2 },
        6 => Response::Error { code: "oversized".into(), detail: kernel_id(n) },
        7 => Response::ShedDeadline {
            deadline_ms: n % 5000,
            priority: (n % 256) as u8,
            brownout_level: (n % 4) as u8,
        },
        _ => Response::Bye,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every request survives an encode→decode round trip bit-for-bit.
    #[test]
    fn requests_roundtrip(
        variant in 0u8..8,
        n in 0u64..1_000_000,
        w in -500.0..500.0f64,
        extra in prop::collection::vec(0u64..1000, 0..6),
    ) {
        let msg = request_from(variant, n, w, &extra);
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        let back: Request = read_frame_blocking(&mut Cursor::new(&buf)).unwrap().unwrap();
        prop_assert_eq!(back, msg);
    }

    /// Every response survives an encode→decode round trip bit-for-bit.
    #[test]
    fn responses_roundtrip(
        variant in 0u8..8,
        n in 0u64..1_000_000,
        w in -500.0..500.0f64,
    ) {
        let msg = response_from(variant, n, w);
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        let back: Response = read_frame_blocking(&mut Cursor::new(&buf)).unwrap().unwrap();
        prop_assert_eq!(back, msg);
    }

    /// Any valid frame truncated at any interior byte decodes to a typed
    /// `Truncated` error — never a panic, never a bogus success.
    #[test]
    fn truncated_frames_are_typed(
        variant in 0u8..8,
        n in 0u64..1_000_000,
        cut in 0u64..10_000,
    ) {
        let msg = request_from(variant, n, 1.0, &[n]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &msg).unwrap();
        let cut = (cut as usize) % buf.len(); // strictly interior
        match read_frame::<_, Request>(&mut Cursor::new(&buf[..cut])) {
            Ok(ReadOutcome::Eof) => prop_assert_eq!(cut, 0),
            Err(ProtocolError::Truncated { expected, got }) => {
                prop_assert!(got < expected, "got {} of {}", got, expected);
            }
            other => prop_assert!(false, "expected Eof or Truncated, got {:?}", other.is_ok()),
        }
    }

    /// Arbitrary bytes never panic the decoder: every outcome is a clean
    /// frame, a clean EOF, or a typed error.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in prop::collection::vec(0u8..=255, 0..64),
    ) {
        match read_frame::<_, Request>(&mut Cursor::new(&bytes)) {
            Ok(_) => {}
            Err(
                ProtocolError::Truncated { .. }
                | ProtocolError::Oversized { .. }
                | ProtocolError::InvalidUtf8
                | ProtocolError::Malformed(_)
                | ProtocolError::Io(_),
            ) => {}
        }
    }

    /// A length prefix above `MAX_FRAME_LEN` is rejected as `Oversized`
    /// before any payload is read or allocated.
    #[test]
    fn oversized_prefix_is_typed(
        over in 1u64..u32::MAX as u64 - MAX_FRAME_LEN as u64,
    ) {
        let len = (MAX_FRAME_LEN as u64 + over) as u32;
        let buf = len.to_be_bytes();
        match read_frame::<_, Request>(&mut Cursor::new(&buf[..])) {
            Err(ProtocolError::Oversized { len: got, max }) => {
                prop_assert_eq!(got, len as usize);
                prop_assert_eq!(max, MAX_FRAME_LEN);
            }
            other => prop_assert!(false, "expected Oversized, got ok={}", other.is_ok()),
        }
    }

    /// Non-UTF-8 payloads decode to `InvalidUtf8`, not a panic.
    #[test]
    fn invalid_utf8_is_typed(
        prefix in prop::collection::vec(0u8..=127, 0..16),
    ) {
        let mut payload = prefix;
        payload.push(0xff); // never valid in UTF-8
        let mut buf = (payload.len() as u32).to_be_bytes().to_vec();
        buf.extend_from_slice(&payload);
        match read_frame::<_, Request>(&mut Cursor::new(&buf)) {
            Err(ProtocolError::InvalidUtf8) => {}
            other => prop_assert!(false, "expected InvalidUtf8, got ok={}", other.is_ok()),
        }
    }
}
