//! Chaos hardening tests: every injected wire fault maps to a typed
//! protocol error or a clean session drop — never a panic, and never a
//! poisoned arbiter (budget conservation is asserted after every drop).
//!
//! Two layers: a deterministic sweep that tears one frame at *every*
//! byte offset straight against the server, and randomized runs through
//! the seeded [`ChaosProxy`] across many seeds.

use acs_core::{train, KernelProfile, TrainedModel, TrainingParams};
use acs_serve::{
    ChaosPlan, ChaosProxy, Client, Request, Response, ServeConfig, Server, ServerHandle,
};
use acs_sim::Machine;
use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;

fn model() -> TrainedModel {
    static MODEL: OnceLock<TrainedModel> = OnceLock::new();
    MODEL
        .get_or_init(|| {
            let machine = Machine::new(2014);
            let profiles: Vec<KernelProfile> = acs_kernels::all_kernel_instances()
                .iter()
                .take(12)
                .map(|k| KernelProfile::collect(&machine, k))
                .collect();
            train(&profiles, TrainingParams::default()).expect("training succeeds")
        })
        .clone()
}

fn spawn(config: ServeConfig) -> (String, ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(config, model()).expect("bind succeeds");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server runs"));
    (addr, handle, join)
}

/// A raw frame for one request, exactly as the protocol writes it.
fn frame_bytes(request: &Request) -> Vec<u8> {
    let body = serde_json::to_string(request).unwrap().into_bytes();
    let mut bytes = (body.len() as u32).to_be_bytes().to_vec();
    bytes.extend_from_slice(&body);
    bytes
}

/// The server must still be fully alive: a fresh session gets a Welcome.
fn assert_alive(addr: &str) {
    let mut probe = Client::connect(addr).expect("server still accepts");
    match probe.call(&Request::Hello) {
        Ok(Response::Welcome { .. }) => {}
        other => panic!("server unhealthy after chaos: {other:?}"),
    }
}

#[test]
fn torn_frame_at_every_offset_is_typed_or_a_clean_drop() {
    let (addr, handle, join) = spawn(ServeConfig { max_sessions: 64, ..ServeConfig::default() });
    let whole = frame_bytes(&Request::Select {
        kernel_id: acs_kernels::all_kernel_instances()[0].id(),
        deadline_ms: None,
        priority: 0,
    });

    for cut in 0..whole.len() {
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream.set_nodelay(true).unwrap();
        stream.write_all(&whole[..cut]).unwrap();
        stream.flush().unwrap();
        stream.shutdown(Shutdown::Write).unwrap();

        // The session must answer with a typed error frame (truncated
        // header/body) or close cleanly (an empty prefix is just EOF) —
        // and nothing else. A panic would surface as a connection reset
        // plus a dead accept loop, caught below by assert_alive.
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        match acs_serve::read_frame_blocking::<_, Response>(&mut stream) {
            Ok(None) => assert_eq!(cut, 0, "only an empty prefix may drop without a frame"),
            Ok(Some(Response::Error { code, .. })) => {
                assert_eq!(code, "truncated", "cut at {cut}/{}", whole.len());
            }
            other => panic!("cut at {cut}: expected typed error or EOF, got {other:?}"),
        }
        // No torn frame may poison the arbiter.
        assert_eq!(handle.budget_conservation_error_w(), 0.0, "cut at {cut}");
    }
    assert!(handle.protocol_errors() >= (whole.len() - 1) as u64);
    assert_alive(&addr);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn corrupt_byte_at_every_offset_is_typed() {
    let (addr, handle, join) = spawn(ServeConfig { max_sessions: 64, ..ServeConfig::default() });
    let whole = frame_bytes(&Request::Select {
        kernel_id: acs_kernels::all_kernel_instances()[0].id(),
        deadline_ms: None,
        priority: 0,
    });

    // Flip every *payload* byte to 0xFF (never valid UTF-8), one at a time.
    for at in 4..whole.len() {
        let mut bytes = whole.clone();
        bytes[at] = 0xFF;
        let mut stream = TcpStream::connect(&addr).unwrap();
        stream.set_nodelay(true).unwrap();
        stream.write_all(&bytes).unwrap();
        stream.flush().unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        match acs_serve::read_frame_blocking::<_, Response>(&mut stream) {
            Ok(Some(Response::Error { code, .. })) => {
                assert_eq!(code, "invalid-utf8", "corrupt byte at {at}");
            }
            other => panic!("corrupt byte at {at}: expected typed error, got {other:?}"),
        }
        assert_eq!(handle.budget_conservation_error_w(), 0.0, "corrupt byte at {at}");
    }
    assert_alive(&addr);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn quiet_proxy_is_byte_transparent() {
    let (addr, handle, join) = spawn(ServeConfig::default());
    let proxy = ChaosProxy::bind("127.0.0.1:0", &addr, ChaosPlan::quiet(1)).unwrap();
    let proxy_addr = proxy.local_addr().to_string();
    let proxy_handle = proxy.handle();
    let proxy_join = std::thread::spawn(move || proxy.run().unwrap());

    let kernel_id = acs_kernels::all_kernel_instances()[0].id();
    let requests = [
        Request::Select { kernel_id: kernel_id.clone(), deadline_ms: None, priority: 0 },
        Request::Run {
            kernel_id: kernel_id.clone(),
            iterations: 2,
            idem: Some(77),
            deadline_ms: None,
            priority: 0,
        },
        Request::Report { residual_w: 3.0, feedback: None },
        Request::Select { kernel_id, deadline_ms: None, priority: 0 },
    ];

    let via_proxy: Vec<String> = {
        let mut c = Client::connect(&proxy_addr).unwrap();
        requests.iter().map(|r| serde_json::to_string(&c.call(r).unwrap()).unwrap()).collect()
    };
    let direct: Vec<String> = {
        let mut c = Client::connect(&addr).unwrap();
        requests.iter().map(|r| serde_json::to_string(&c.call(r).unwrap()).unwrap()).collect()
    };
    // The Run carries an idem key, so the second (direct) execution
    // replays the first's memoized bytes: the logs match exactly.
    assert_eq!(via_proxy, direct, "a quiet proxy must be invisible");

    let stats = proxy_handle.stats();
    assert_eq!(stats.faults(), 0);
    assert_eq!(stats.frames, requests.len() as u64);

    proxy_handle.shutdown();
    proxy_join.join().unwrap();
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn seeded_chaos_never_panics_and_never_poisons_the_arbiter() {
    let (addr, handle, join) = spawn(ServeConfig { max_sessions: 64, ..ServeConfig::default() });
    let kernel_ids: Vec<String> =
        acs_kernels::all_kernel_instances().iter().take(4).map(|k| k.id()).collect();

    for seed in 0..10u64 {
        let plan = ChaosPlan {
            seed,
            disconnect_p: 0.10,
            tear_p: 0.10,
            corrupt_p: 0.10,
            delay_p: 0.05,
            delay_ms: 2,
            dup_p: 0.10,
            dribble_p: 0.05,
            ..ChaosPlan::quiet(seed)
        };
        let proxy = ChaosProxy::bind("127.0.0.1:0", &addr, plan).unwrap();
        let proxy_addr = proxy.local_addr().to_string();
        let proxy_handle = proxy.handle();
        let proxy_join = std::thread::spawn(move || proxy.run().unwrap());

        // Closed-loop sessions through the proxy. Any call may fail (the
        // proxy tears/drops at will) — the contract is that failures are
        // clean, the server stays alive, and the arbiter stays conserved.
        for conn in 0..6u64 {
            let Ok(mut client) = Client::connect(&proxy_addr) else { continue };
            let _ = client.stream_mut().set_read_timeout(Some(Duration::from_secs(5)));
            for i in 0..6u64 {
                let request = match i % 3 {
                    0 => Request::Select {
                        kernel_id: kernel_ids[(conn + i) as usize % kernel_ids.len()].clone(),
                        deadline_ms: None,
                        priority: 0,
                    },
                    1 => Request::Run {
                        kernel_id: kernel_ids[(conn + i) as usize % kernel_ids.len()].clone(),
                        iterations: 1,
                        idem: Some(seed * 1000 + conn * 10 + i),
                        deadline_ms: None,
                        priority: 0,
                    },
                    _ => Request::Report { residual_w: (i * 3) as f64, feedback: None },
                };
                match client.call(&request) {
                    Ok(_) => {}
                    Err(_) => break, // injected fault: the drop must be clean
                }
            }
            // After every connection — dropped mid-batch or not — the
            // global cap is still split exactly.
            assert_eq!(
                handle.budget_conservation_error_w(),
                0.0,
                "conservation violated at seed {seed}, conn {conn}"
            );
        }

        proxy_handle.shutdown();
        proxy_join.join().unwrap();
        let stats = proxy_handle.stats();
        assert!(stats.frames > 0, "seed {seed} drove no frames");
    }

    // Sessions the proxy killed must have left the arbiter; only the
    // probe below may remain. Overall: alive, conserved, typed.
    assert_alive(&addr);
    assert_eq!(handle.budget_conservation_error_w(), 0.0);
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn dribbled_frames_arrive_intact_at_every_length() {
    // A dribble-only plan slow-lorises every client frame: the proxy
    // forwards one byte per millisecond tick, so the server's blocking
    // reader sees every possible partial-frame boundary on the way to a
    // complete frame. Sweeping requests of different encoded lengths,
    // the dribbled responses must match direct responses byte-for-byte —
    // a slow sender is indistinguishable from a fast one.
    let (addr, handle, join) = spawn(ServeConfig::default());
    let plan = ChaosPlan { dribble_p: 1.0, ..ChaosPlan::quiet(5) };
    let proxy = ChaosProxy::bind("127.0.0.1:0", &addr, plan).unwrap();
    let proxy_addr = proxy.local_addr().to_string();
    let proxy_handle = proxy.handle();
    let proxy_join = std::thread::spawn(move || proxy.run().unwrap());

    let kernel_ids: Vec<String> =
        acs_kernels::all_kernel_instances().iter().take(3).map(|k| k.id()).collect();
    let mut requests = vec![Request::Hello];
    for (i, kernel_id) in kernel_ids.iter().enumerate() {
        requests.push(Request::Select {
            kernel_id: kernel_id.clone(),
            deadline_ms: None,
            priority: 0,
        });
        requests.push(Request::Run {
            kernel_id: kernel_id.clone(),
            iterations: 1 + i as u64,
            idem: Some(9000 + i as u64),
            deadline_ms: None,
            priority: 0,
        });
    }
    let via_proxy: Vec<String> = {
        let mut c = Client::connect(&proxy_addr).unwrap();
        requests.iter().map(|r| serde_json::to_string(&c.call(r).unwrap()).unwrap()).collect()
    };
    let direct: Vec<String> = {
        let mut c = Client::connect(&addr).unwrap();
        requests.iter().map(|r| serde_json::to_string(&c.call(r).unwrap()).unwrap()).collect()
    };
    // Hello responses carry per-session node ids; everything downstream
    // (the keyed Runs replay their memos) must be identical.
    assert_eq!(via_proxy[1..], direct[1..], "dribbled frames must reassemble exactly");

    let stats = proxy_handle.stats();
    assert_eq!(stats.dribbled, requests.len() as u64, "every frame was dribbled");
    assert_eq!(stats.faults(), requests.len() as u64);
    assert_eq!(handle.protocol_errors(), 0, "no dribbled frame may tear");

    proxy_handle.shutdown();
    proxy_join.join().unwrap();
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn duplicated_frames_do_not_double_execute_keyed_runs() {
    // A dup-only plan: every frame has a 100% duplicate probability would
    // desync a closed-loop client, so inject on exactly one frame by
    // sending one keyed Run through a dup-heavy proxy and counting server
    // executions via the idempotency replay metric.
    let (addr, handle, join) = spawn(ServeConfig::default());
    let plan = ChaosPlan { dup_p: 1.0, ..ChaosPlan::quiet(3) };
    let proxy = ChaosProxy::bind("127.0.0.1:0", &addr, plan).unwrap();
    let proxy_addr = proxy.local_addr().to_string();
    let proxy_handle = proxy.handle();
    let proxy_join = std::thread::spawn(move || proxy.run().unwrap());

    let kernel_id = acs_kernels::all_kernel_instances()[0].id();
    let mut client = Client::connect(&proxy_addr).unwrap();
    let first = client
        .call(&Request::Run {
            kernel_id,
            iterations: 2,
            idem: Some(404),
            deadline_ms: None,
            priority: 0,
        })
        .expect("the first response of the duplicated pair");
    assert!(matches!(first, Response::Ran { .. }));
    // The server saw the frame twice; the duplicate was answered from the
    // idempotency memo, not executed again.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while handle.idem_replays() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(handle.idem_replays(), 1, "the duplicated Run must replay, not re-execute");
    assert_eq!(proxy_handle.stats().duplicated, 1);

    proxy_handle.shutdown();
    proxy_join.join().unwrap();
    handle.shutdown();
    join.join().unwrap();
}
