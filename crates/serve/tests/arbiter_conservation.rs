//! Property tests for the arbiter's budget-conservation invariant: after
//! every join, leave, or report — in any order, under either policy, at
//! any cap — the per-node budgets sum back to the global cap (the
//! rounding remainder is folded onto the lowest node id), every budget
//! stays strictly positive, and the whole trajectory is deterministic.

use acs_serve::{Arbiter, ArbiterPolicy};
use proptest::prelude::*;

fn policy_from(n: u8) -> ArbiterPolicy {
    if n.is_multiple_of(2) {
        ArbiterPolicy::EqualShare
    } else {
        ArbiterPolicy::DemandProportional
    }
}

/// Apply one encoded op; 0 = join, 1 = leave, anything else = report.
fn apply(a: &mut Arbiter, op: u8, id: u64, w: f64) {
    match op % 3 {
        0 => {
            a.join(id);
        }
        1 => a.leave(id),
        _ => {
            a.report(id, w);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Budgets sum to the cap — exactly, up to at most one ulp of
    /// re-rounding — after every operation in a random churn sequence.
    #[test]
    fn budgets_are_conserved_under_random_churn(
        policy in 0u8..2,
        cap_milli in 1u64..1_000_000, // 1 mW .. 1 kW
        ops in prop::collection::vec((0u8..3, 0u64..16, -50.0..50.0f64), 1..200),
    ) {
        let cap = cap_milli as f64 / 1000.0;
        let mut a = Arbiter::new(cap, policy_from(policy));
        for (i, &(op, id, w)) in ops.iter().enumerate() {
            apply(&mut a, op, id, w);
            let err = a.conservation_error_w();
            prop_assert!(
                err <= cap * f64::EPSILON,
                "op {} ({},{},{}): {} nodes sum to {} under a {} W cap (err {:e})",
                i, op, id, w, a.node_count(), a.budget_sum_w(), cap, err
            );
            for id in a.node_ids() {
                let b = a.budget_of(id).unwrap();
                prop_assert!(b > 0.0, "node {} holds a non-positive budget {}", id, b);
            }
        }
    }

    /// The same op sequence replays to bit-identical budgets: the
    /// remainder assignment is deterministic, not dependent on map
    /// iteration luck or accumulated state.
    #[test]
    fn churn_replays_to_bit_identical_budgets(
        policy in 0u8..2,
        ops in prop::collection::vec((0u8..3, 0u64..8, -20.0..20.0f64), 1..64),
    ) {
        let run = || {
            let mut a = Arbiter::new(77.7, policy_from(policy));
            for &(op, id, w) in &ops {
                apply(&mut a, op, id, w);
            }
            a.node_ids()
                .into_iter()
                .map(|id| (id, a.budget_of(id).unwrap().to_bits()))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}
