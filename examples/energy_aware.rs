//! Alternative scheduling goals (Section III-C): the same predicted
//! configuration space supports energy efficiency, energy–delay product,
//! or any other objective — not just performance-under-a-cap. This example
//! compares what each objective selects for three behaviorally different
//! kernels, and what the choices actually cost.
//!
//! Run with: `cargo run --release --example energy_aware`

use acs::core::Objective;
use acs::prelude::*;

fn main() {
    let machine = Machine::new(42);
    let apps = acs::kernels::app_instances();

    // Train without LULESH; then schedule three LULESH kernels with very
    // different characters.
    let training: Vec<KernelProfile> = apps
        .iter()
        .filter(|a| a.benchmark != "LULESH")
        .flat_map(|a| a.kernels.iter().map(|k| KernelProfile::collect(&machine, k)))
        .collect();
    let model = train(&training, TrainingParams::default()).expect("training");
    let predictor = Predictor::new(&model);

    let lulesh = apps.iter().find(|a| a.label() == "LULESH Small").unwrap();
    let picks = [
        "CalcFBHourglassForce",                // compute-dense, GPU-friendly
        "CalcPositionForNodes",                // bandwidth-bound streaming
        "ApplyAccelerationBoundaryConditions", // tiny, launch-dominated
    ];

    let objectives = [
        Objective::MaxPerf,
        Objective::MaxPerfUnderCap(20.0),
        Objective::MinEnergyDelay,
        Objective::MinEnergy,
    ];

    for name in picks {
        let kernel = lulesh.kernels.iter().find(|k| k.name == name).unwrap();
        let samples = SamplePair::new(
            machine.run_iter(kernel, &sample_config(Device::Cpu), 0),
            machine.run_iter(kernel, &sample_config(Device::Gpu), 1),
        );
        let predicted = predictor.predict(&samples);

        println!("{}", kernel.id());
        println!(
            "  {:<10} | {:<42} | {:>9} | {:>8} | {:>9}",
            "objective", "selected configuration", "power", "ms/iter", "mJ/iter"
        );
        for o in objectives {
            let cfg = o.select(&predicted.points).expect("non-empty space");
            let run = machine.run_iter(kernel, &cfg, 2);
            println!(
                "  {:<10} | {:<42} | {:>7.1} W | {:>8.3} | {:>9.2}",
                o.name(),
                cfg.to_string(),
                run.true_power_w(),
                run.time_s * 1e3,
                run.true_power_w() * run.time_s * 1e3,
            );
        }
        println!();
    }

    println!(
        "All selections come from ONE prediction per kernel (two sample\n\
         iterations); changing the objective is free. Note how min-E and\n\
         min-EDP pull the streaming kernel to low-frequency configurations\n\
         while the compute-dense kernel stays on the GPU, where finishing\n\
         fast saves more energy than running slow."
    );
}
