//! Multi-application power partitioning: split one node budget between two
//! co-scheduled applications using only their kernels' *predicted* Pareto
//! frontiers — the multi-application system the paper names as the next
//! layer up ("accurate single-application models are a necessary
//! ingredient in multi-application optimization systems", Section II).
//!
//! Run with: `cargo run --release --example multi_app`

use acs::core::partition::{partition_budget, DemandCurve};
use acs::prelude::*;

fn main() {
    let machine = Machine::new(42);
    let apps = acs::kernels::app_instances();

    // Offline: train on LULESH + SMC.
    let training: Vec<KernelProfile> = apps
        .iter()
        .filter(|a| a.benchmark == "LULESH" || a.benchmark == "SMC")
        .flat_map(|a| a.kernels.iter().map(|k| KernelProfile::collect(&machine, k)))
        .collect();
    let model = train(&training, TrainingParams::default()).expect("training");
    let predictor = Predictor::new(&model);

    // Co-schedule CoMD (GPU-hungry force kernels) and LU Small (extreme
    // GPU cliff) — neither seen in training.
    let mut curves = Vec::new();
    for label in ["CoMD", "LU Small"] {
        let app = apps.iter().find(|a| a.label() == label).unwrap();
        let frontiers: Vec<(f64, Frontier)> = app
            .kernels
            .iter()
            .map(|k| {
                let samples = SamplePair::new(
                    machine.run_iter(k, &sample_config(Device::Cpu), 0),
                    machine.run_iter(k, &sample_config(Device::Gpu), 1),
                );
                (k.weight, predictor.predict(&samples).frontier)
            })
            .collect();
        curves.push(DemandCurve::from_frontiers(&app.label(), &frontiers));
    }

    println!("node budget partitioning between CoMD and LU Small");
    println!("(relative performance = 1.0 means unconstrained speed)\n");
    println!(
        "{:>10} | {:>10} {:>9} | {:>10} {:>9} | {:>10}",
        "node cap", "CoMD gets", "rel perf", "LU gets", "rel perf", "objective"
    );
    println!("{}", "-".repeat(72));

    for total in [70.0, 55.0, 45.0, 38.0, 30.0, 24.0] {
        let p = partition_budget(&curves, total, 0.5);
        println!(
            "{:>8.0} W | {:>8.1} W {:>9.2} | {:>8.1} W {:>9.2} | {:>10.2}",
            total, p.budgets_w[0], p.perfs[0], p.budgets_w[1], p.perfs[1], p.objective
        );
    }

    println!(
        "\nAs the node cap shrinks, the partitioner protects the app whose\n\
         demand curve falls off fastest, and below the combined minimum it\n\
         parks one application entirely rather than starving both — decisions\n\
         made purely from two sample iterations per kernel."
    );
}
