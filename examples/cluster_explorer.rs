//! Explore the offline stage: characterize the full 65-combination suite,
//! print the kernel clusters (which benchmarks land where, and what
//! behavioral archetype each cluster's medoid represents), the cluster
//! regression quality, and the classification tree.
//!
//! Run with: `cargo run --release --example cluster_explorer`

use acs::prelude::*;
use rayon::prelude::*;

fn main() {
    let machine = Machine::new(42);
    let kernels = acs::kernels::all_kernel_instances();

    println!("characterizing {} kernel/input combinations ...", kernels.len());
    let profiles: Vec<KernelProfile> =
        kernels.par_iter().map(|k| KernelProfile::collect(&machine, k)).collect();

    let model = train(&profiles, TrainingParams::default()).expect("training");

    println!(
        "\nPAM clustering with k = {} (silhouette {:.3}):\n",
        model.clusters.len(),
        model.silhouette
    );

    for c in 0..model.clustering.k() {
        let members = model.clustering.members(c);
        let medoid = model.clustering.medoids[c];
        println!("cluster {c} — {} kernels, medoid: {}", members.len(), model.kernel_ids[medoid]);

        // Describe the archetype by the medoid's best device and
        // memory-boundedness (reading the simulator's ground truth, which
        // the *model* never sees — this is for human interpretation only).
        let medoid_kernel = &profiles[medoid].kernel;
        let best = profiles[medoid].best_run();
        println!(
            "    archetype: best device {}, memory-boundedness {:.2}, GPU speedup {:.1}x",
            best.config.device,
            medoid_kernel.memory_boundedness(),
            medoid_kernel.gpu_speedup
        );

        // Which benchmark/input combinations contribute?
        let mut combos: Vec<String> = members
            .iter()
            .map(|&i| {
                let parts: Vec<&str> = model.kernel_ids[i].split('/').collect();
                format!("{} {}", parts[0], parts[1])
            })
            .collect();
        combos.sort();
        combos.dedup();
        println!("    drawn from: {}", combos.join(", "));

        let r2 = &model.clusters[c];
        println!(
            "    regression r²: perf cpu {:.2} / gpu {:.2}, power cpu {:.2} / gpu {:.2}",
            r2.perf_cpu.r_squared,
            r2.perf_gpu.r_squared,
            r2.power_cpu.r_squared,
            r2.power_gpu.r_squared
        );
    }

    println!("\nclassification tree (Figure 3 analogue):\n");
    print!("{}", model.render_tree());
    println!(
        "\ntree training accuracy: {:.0}%  |  depth {}  |  {} nodes",
        model.tree_training_accuracy(&profiles) * 100.0,
        model.tree.depth(),
        model.tree.node_count()
    );
}
