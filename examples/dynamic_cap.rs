//! Dynamic power constraints: the predicted Pareto frontier is computed
//! once per kernel, after which re-selection under a *changed* cap is a
//! frontier lookup — "the use of a predicted Pareto frontier makes our
//! system adaptable to dynamic power constraints, and avoids the need to
//! examine predictions for all configurations when scheduling conditions
//! change" (Section III-C).
//!
//! This example simulates a cluster power manager that re-budgets the node
//! every 100 iterations while a CoMD force kernel runs, and reports how
//! the kernel's configuration follows the budget.
//!
//! Run with: `cargo run --release --example dynamic_cap`

use acs::prelude::*;
use std::time::Instant;

fn main() {
    let machine = Machine::new(42);
    let apps = acs::kernels::app_instances();

    // Train without CoMD.
    let training: Vec<KernelProfile> = apps
        .iter()
        .filter(|a| a.benchmark != "CoMD")
        .flat_map(|a| a.kernels.iter().map(|k| KernelProfile::collect(&machine, k)))
        .collect();
    let model = train(&training, TrainingParams::default()).expect("training");
    let predictor = Predictor::new(&model);

    let comd = apps.iter().find(|a| a.benchmark == "CoMD").unwrap();
    let kernel = comd.kernels.iter().find(|k| k.name == "LJForce").unwrap();

    // Online: two sample iterations, one prediction, then the frontier is
    // reused for every budget change.
    let samples = SamplePair::new(
        machine.run_iter(kernel, &sample_config(Device::Cpu), 0),
        machine.run_iter(kernel, &sample_config(Device::Gpu), 1),
    );
    let predicted = predictor.predict(&samples);
    println!(
        "{} classified into cluster {}; predicted frontier: {} configurations\n",
        kernel.id(),
        predicted.cluster,
        predicted.frontier.len()
    );

    // A fluctuating node budget, as a cluster manager would issue.
    let schedule: [(u64, f64); 6] =
        [(0, 35.0), (100, 22.0), (200, 15.0), (300, 28.0), (400, 11.0), (500, 35.0)];

    println!(
        "{:>5} | {:>6} | {:<42} | {:>9} | {:>8}",
        "iter", "cap", "selected configuration", "power", "ms/iter"
    );
    println!("{}", "-".repeat(85));

    let mut reselect_total = std::time::Duration::ZERO;
    for (iter, cap_w) in schedule {
        let t0 = Instant::now();
        let config = predicted.select(cap_w);
        reselect_total += t0.elapsed();

        let run = machine.run_iter(kernel, &config, iter);
        println!(
            "{:>5} | {:>4.0} W | {:<42} | {:>7.1} W | {:>8.2}",
            iter,
            cap_w,
            config.to_string(),
            run.true_power_w(),
            run.time_s * 1e3
        );
    }

    println!(
        "\nsix re-selections took {:?} total — no re-prediction, no kernel \
         re-profiling, just frontier lookups",
        reselect_total
    );
}
