//! Quickstart: train the model offline on three benchmarks, then pick a
//! configuration for a brand-new kernel under a 25 W power cap after
//! observing it for just two iterations.
//!
//! Run with: `cargo run --release --example quickstart`

use acs::prelude::*;

fn main() {
    // A simulated Trinity-class APU. Everything downstream is
    // deterministic in this seed.
    let machine = Machine::new(42);

    // ---------------------------------------------------------------
    // Offline stage: characterize a training suite (here: LULESH, CoMD,
    // and SMC — we hold LU out as the "new" application), cluster the
    // kernels by frontier similarity, and fit per-cluster models.
    // ---------------------------------------------------------------
    let apps = acs::kernels::app_instances();
    let training: Vec<KernelProfile> = apps
        .iter()
        .filter(|a| a.benchmark != "LU")
        .flat_map(|a| a.kernels.iter().map(|k| KernelProfile::collect(&machine, k)))
        .collect();
    println!("characterized {} training kernels over 42 configurations each", training.len());

    let model = train(&training, TrainingParams::default()).expect("offline training");
    println!(
        "trained {} clusters (silhouette {:.2}), classification tree depth {}",
        model.clusters.len(),
        model.silhouette,
        model.tree.depth(),
    );

    // ---------------------------------------------------------------
    // Online stage: a kernel the model has never seen (Rodinia LU). Run
    // it once per device at the Table II sample configurations — these
    // two iterations are part of normal execution, not extra work.
    // ---------------------------------------------------------------
    let lu = &apps.iter().find(|a| a.label() == "LU Small").unwrap().kernels[0];
    let samples = SamplePair::new(
        machine.run(lu, &sample_config(Device::Cpu)),
        machine.run(lu, &sample_config(Device::Gpu)),
    );

    let predictor = Predictor::new(&model);
    let predicted = predictor.predict(&samples);
    println!(
        "\nnew kernel {} classified into cluster {} — predicted frontier has {} points",
        lu.id(),
        predicted.cluster,
        predicted.frontier.len()
    );

    // Select under a 25 W cap and check what actually happens.
    let cap_w = 25.0;
    let config = predicted.select(cap_w);
    let run = machine.run(lu, &config);
    println!("\nunder a {cap_w:.0} W cap the model selects: {config}");
    println!(
        "  measured: {:.2} ms/iteration at {:.1} W ({})",
        run.time_s * 1e3,
        run.power_w(),
        if run.power_w() <= cap_w { "cap met" } else { "cap exceeded" }
    );

    // Compare with what exhaustive search would have found.
    let oracle = KernelProfile::collect(&machine, lu);
    let oracle_cfg = acs::core::methods::oracle_select(&oracle, cap_w);
    let oracle_run = oracle.run_at(&oracle_cfg);
    println!(
        "  oracle (perfect knowledge) selects: {oracle_cfg} — {:.2} ms at {:.1} W",
        oracle_run.time_s * 1e3,
        oracle_run.true_power_w()
    );
    println!(
        "  model achieves {:.0}% of oracle performance from only two observations",
        oracle_run.time_s / run.time_s * 100.0
    );
}
