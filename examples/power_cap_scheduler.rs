//! A node-level power-capped application run: execute every kernel of
//! LULESH (Small) under a sweep of power caps, the way a cluster-level
//! power policy would hand shrinking budgets down to the node
//! (Section I). For each cap the scheduler uses the online pipeline —
//! two sample iterations per kernel, then model-selected configurations,
//! with the run history recording everything the way the profiling
//! library of Section III-D does.
//!
//! Run with: `cargo run --release --example power_cap_scheduler`

use acs::prelude::*;
use acs_profiling::ProfileSample;

fn main() {
    let machine = Machine::new(42);
    let apps = acs::kernels::app_instances();

    // Offline: train on everything except LULESH (leave-one-benchmark-out,
    // exactly like the paper's cross-validation).
    let training: Vec<KernelProfile> = apps
        .iter()
        .filter(|a| a.benchmark != "LULESH")
        .flat_map(|a| a.kernels.iter().map(|k| KernelProfile::collect(&machine, k)))
        .collect();
    let model = train(&training, TrainingParams::default()).expect("training");
    let predictor = Predictor::new(&model);

    let lulesh = apps.iter().find(|a| a.label() == "LULESH Small").unwrap();
    let history = History::new();

    println!("LULESH Small under shrinking node power caps");
    println!();
    println!(
        "{:>6} | {:>12} | {:>10} | {:>9} | {:>11}",
        "cap", "app time", "avg power", "caps met", "GPU kernels"
    );
    println!("{}", "-".repeat(62));

    for cap_w in [40.0, 30.0, 25.0, 20.0, 16.0, 12.0] {
        let mut total_time = 0.0;
        let mut total_energy = 0.0;
        let mut met = 0usize;
        let mut on_gpu = 0usize;

        for kernel in &lulesh.kernels {
            // Two sample iterations (part of normal execution), then the
            // selected configuration for the remaining iterations.
            let cpu_sample = machine.run_iter(kernel, &sample_config(Device::Cpu), 0);
            let gpu_sample = machine.run_iter(kernel, &sample_config(Device::Gpu), 1);
            history.record(ProfileSample::from_run(&kernel.id(), 0, &cpu_sample));
            history.record(ProfileSample::from_run(&kernel.id(), 1, &gpu_sample));

            let samples = SamplePair::new(cpu_sample, gpu_sample);
            let config = predictor.predict(&samples).select(cap_w);
            let run = machine.run_iter(kernel, &config, 2);
            history.record(ProfileSample::from_run(&kernel.id(), 2, &run));

            // Weight kernels by their share of application time.
            let scaled = run.time_s * kernel.weight / lulesh.kernels[0].weight;
            total_time += scaled;
            total_energy += run.power_w() * scaled;
            if run.true_power_w() <= cap_w {
                met += 1;
            }
            if config.device == Device::Gpu {
                on_gpu += 1;
            }
        }

        println!(
            "{:>4.0} W | {:>9.1} ms | {:>8.1} W | {:>6}/20 | {:>8}/20",
            cap_w,
            total_time * 1e3,
            total_energy / total_time,
            met,
            on_gpu
        );
    }

    println!();
    println!(
        "history now holds {} samples across {} kernels — a runtime can reuse \
         them for later scheduling decisions",
        history.total_samples(),
        history.kernel_ids().len()
    );
    println!(
        "\nNote how the scheduler migrates kernels from the GPU to the CPU as \
         the cap tightens: device selection, not just DVFS, is the paper's key \
         power lever."
    );
}
