//! Visualize what the on-chip power estimator actually sees: the
//! phase-resolved power waveform of kernel executions and the 1 kHz
//! accumulator's view of it, for a compute-bound and a memory-bound kernel
//! on both devices.
//!
//! Run with: `cargo run --release --example power_trace`

use acs::prelude::*;
use acs_sim::{trace_for, NoiseSource, PowerCalibration, PowerSensor};

fn plot(label: &str, kernel: &KernelCharacteristics, config: &Configuration) {
    let cal = PowerCalibration::default();
    let trace = trace_for(kernel, config, &cal);
    let sensor = PowerSensor::default();
    let noise = NoiseSource::new(42, &kernel.id(), config.index(), 0);

    println!("{label}: {} at {config}", kernel.id());
    println!(
        "  duration {:.2} ms, {} phase segments, true average {:.1} W",
        trace.total_s() * 1e3,
        trace.segments().len(),
        trace.average().total_w()
    );

    // Render the first 2 ms of the waveform at 50 µs resolution.
    let horizon = trace.total_s().min(0.002);
    let cols = 72usize;
    let dt = horizon / cols as f64;
    let samples: Vec<f64> = (0..cols)
        .map(|i| trace.window_average(|p| p.total_w(), i as f64 * dt, (i + 1) as f64 * dt))
        .collect();
    let max = samples.iter().cloned().fold(1.0f64, f64::max);
    for level in (1..=6).rev() {
        let threshold = max * level as f64 / 6.0;
        let row: String =
            samples.iter().map(|&w| if w >= threshold - 1e-9 { '█' } else { ' ' }).collect();
        print!("  {:>5.1} W |{row}|", threshold);
        println!();
    }
    println!("          0 ms {:>66}", format!("{:.2} ms", horizon * 1e3));

    let est_cpu = sensor.estimate_trace(&trace, |p| p.cpu_plane_w, &noise);
    let est_gpu = sensor.estimate_trace(&trace, |p| p.gpu_nb_plane_w, &noise);
    println!(
        "  1 kHz estimator reads: CPU plane {:.2} W, GPU+NB plane {:.2} W (total {:.2} W)\n",
        est_cpu,
        est_gpu,
        est_cpu + est_gpu
    );
}

fn main() {
    let apps = acs::kernels::app_instances();
    let lulesh = apps.iter().find(|a| a.label() == "LULESH Small").unwrap();

    let compute = lulesh.kernels.iter().find(|k| k.name == "CalcFBHourglassForce").unwrap();
    let streaming = lulesh.kernels.iter().find(|k| k.name == "CalcPositionForNodes").unwrap();

    plot("compute-dense, CPU", compute, &Configuration::cpu(4, CpuPState::MAX));
    plot("compute-dense, GPU", compute, &Configuration::gpu(GpuPState::MAX, CpuPState::MAX));
    plot("memory-bound, CPU", streaming, &Configuration::cpu(4, CpuPState::MAX));
    plot("memory-bound, GPU", streaming, &Configuration::gpu(GpuPState::MIN, CpuPState::MIN));

    println!(
        "The memory-bound kernel's waveform swings hard between compute bursts\n\
         and DRAM stalls; the estimator's windowed accumulation is what keeps\n\
         its average honest even for sub-millisecond kernels (Section IV-C)."
    );
}
