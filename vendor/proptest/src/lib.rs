//! Offline-compatible `proptest` shim.
//!
//! Implements the subset of proptest this workspace uses: the
//! [`Strategy`] trait with `prop_map`/`prop_flat_map`, numeric range
//! strategies, tuple composition, [`Just`], `collection::{vec,
//! btree_set}`, the `proptest!` test-runner macro with
//! `#![proptest_config(...)]`, and the `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!` assertion macros.
//!
//! Cases are generated from a deterministic splitmix64 stream seeded by
//! the test name: the stream yields one 64-bit `case seed` per case and
//! the case's inputs are drawn from a fresh generator seeded with it, so
//! any single case reproduces from its seed alone. There is no
//! shrinking: a failing case reports its index, message, and a
//! `cc <seed>` line that can be persisted to the source file's
//! `.proptest-regressions` sibling. Persisted entries replay before
//! fresh generation on every run (see [`persisted_seeds`]).

use std::ops::{Range, RangeInclusive};
use std::path::{Path, PathBuf};

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

/// Runner configuration; only `cases` is interpreted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    /// Cap on total rejected cases (`prop_assume!`) before the test
    /// fails as under-constrained.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases, ..Self::default() }
    }

    /// Like [`ProptestConfig::with_cases`], but `PROPTEST_CASES` (when
    /// set to a positive integer) overrides the given count, so CI can
    /// re-budget tests that declare an explicit default without
    /// touching sources.
    pub fn with_cases_env(cases: u32) -> Self {
        Self { cases: env_cases().unwrap_or(cases), ..Self::default() }
    }
}

/// `PROPTEST_CASES` as a case budget, when set and valid.
fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.trim().parse().ok()).filter(|&n| n > 0)
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Mirror upstream proptest: `PROPTEST_CASES` overrides the
        // default case budget, so CI can pin a fixed (reproducible)
        // number of cases without touching test sources. Explicit
        // `with_cases` calls still win — the variable only feeds the
        // default.
        Self { cases: env_cases().unwrap_or(256), max_global_rejects: 65536 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the input; the runner draws a new case.
    Reject,
    /// An assertion failed; the runner aborts the test.
    Fail(String),
}

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seeded(seed: u64) -> Self {
        Self { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Seed from a test name so each test has its own stable stream.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::seeded(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Modulo bias is
    /// irrelevant at test-generation fidelity.
    pub fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        lo + (u128::from(self.next_u64()) % span) as i128
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

// --- numeric range strategies ---------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.int_in(self.start as i128, self.end as i128 - 1) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.int_in(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty range strategy");
        self.start() + (self.end() - self.start()) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn new_value(&self, rng: &mut TestRng) -> f32 {
        (Range { start: f64::from(self.start), end: f64::from(self.end) }).new_value(rng) as f32
    }
}

// --- tuple composition -----------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

// --- collections -----------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self { min: *r.start(), max: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.int_in(self.size.min as i128, self.size.max as i128) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = rng.int_in(self.size.min as i128, self.size.max as i128) as usize;
            let mut set = BTreeSet::new();
            // Duplicate draws don't grow the set; cap the attempts so a
            // too-small element domain terminates (possibly under-sized,
            // as the real crate's local-reject cap also allows).
            let mut attempts = 0usize;
            while set.len() < target && attempts < target * 32 + 64 {
                set.insert(self.element.new_value(rng));
                attempts += 1;
            }
            set
        }
    }

    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }
}

// --- persisted regressions -------------------------------------------------

/// Replay seeds persisted next to a test source file.
///
/// `source_file` is the test's `file!()` path. Its sibling
/// `<stem>.proptest-regressions` is parsed for `cc <token>` lines (the
/// upstream persistence format). Because `file!()` is relative to the
/// workspace root while tests may run from any member directory, the
/// path is resolved against each ancestor of the current directory.
/// Missing or unreadable files yield no seeds — absence is not an error.
///
/// The shim does not track which test produced an entry, so every entry
/// replays for every `proptest!` test in the file; seeds must therefore
/// satisfy all properties in that file (they encode inputs, not
/// expected failures).
pub fn persisted_seeds(source_file: &str) -> Vec<u64> {
    let Some(path) = regressions_path(source_file) else { return Vec::new() };
    match std::fs::read_to_string(&path) {
        Ok(text) => parse_regressions(&text),
        Err(_) => Vec::new(),
    }
}

/// Locate `<source stem>.proptest-regressions` for a `file!()` path.
fn regressions_path(source_file: &str) -> Option<PathBuf> {
    let rel = Path::new(source_file).with_extension("proptest-regressions");
    if rel.is_absolute() {
        return rel.exists().then_some(rel);
    }
    let cwd = std::env::current_dir().ok()?;
    cwd.ancestors().map(|a| a.join(&rel)).find(|p| p.exists())
}

/// Parse the `cc <token>` lines of a regressions file into replay seeds.
pub fn parse_regressions(text: &str) -> Vec<u64> {
    text.lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("cc ")?;
            let token = rest.split_whitespace().next()?;
            seed_from_token(token)
        })
        .collect()
}

/// A 16-digit hex token is this shim's native case seed. Longer hex
/// tokens (e.g. the 256-bit seeds the real crate persisted before the
/// shim existed) fold to 64 bits via FNV-1a so legacy entries still
/// replay a deterministic case rather than being dropped.
fn seed_from_token(token: &str) -> Option<u64> {
    if token.is_empty() || !token.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    if token.len() <= 16 {
        return u64::from_str_radix(token, 16).ok();
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in token.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    Some(h)
}

// --- macros ----------------------------------------------------------------

/// Declare property tests. Each case draws inputs from the listed
/// strategies; `prop_assume!` rejects redraw, assertion failures abort
/// with the case index.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run ($cfg); $($rest)* }
    };
    (@run ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let run_case = |rng: &mut $crate::TestRng|
                    -> ::std::result::Result<(), $crate::TestCaseError> {
                    $(let $pat = $crate::Strategy::new_value(&($strat), rng);)+
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                };
                // Persisted regressions replay before fresh generation,
                // so once-failing inputs stay covered at any case budget.
                for case_seed in $crate::persisted_seeds(file!()) {
                    let mut rng = $crate::TestRng::seeded(case_seed);
                    match run_case(&mut rng) {
                        ::std::result::Result::Ok(())
                        | ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed replaying persisted regression \
                                 cc {case_seed:016x}: {msg}",
                                stringify!($name),
                            );
                        }
                    }
                }
                let mut seeder = $crate::TestRng::for_test(stringify!($name));
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                let mut case_index: u64 = 0;
                while accepted < config.cases {
                    case_index += 1;
                    let case_seed = seeder.next_u64();
                    let mut rng = $crate::TestRng::seeded(case_seed);
                    match run_case(&mut rng) {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                            rejected += 1;
                            if rejected > config.max_global_rejects {
                                panic!(
                                    "proptest {}: too many prop_assume! rejections ({rejected})",
                                    stringify!($name),
                                );
                            }
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {case_index}: {msg}\n\
                                 persist with: cc {case_seed:016x}",
                                stringify!($name),
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @run ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Assert a condition inside `proptest!`, with an optional format
/// message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Reject the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn proptest_cases_env_overrides_default() {
        // Single test owning the env var (parallel test threads share the
        // process environment, so all mutation stays inside this one).
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(ProptestConfig::default().cases, 256);
        std::env::set_var("PROPTEST_CASES", "17");
        assert_eq!(ProptestConfig::default().cases, 17);
        // Explicit counts win over the environment.
        assert_eq!(ProptestConfig::with_cases(9).cases, 9);
        // ... but `with_cases_env` counts are defaults the env overrides.
        assert_eq!(ProptestConfig::with_cases_env(9).cases, 17);
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(ProptestConfig::with_cases_env(9).cases, 9);
        // Garbage and zero fall back to the built-in default.
        std::env::set_var("PROPTEST_CASES", "zero");
        assert_eq!(ProptestConfig::default().cases, 256);
        std::env::set_var("PROPTEST_CASES", "0");
        assert_eq!(ProptestConfig::default().cases, 256);
        std::env::remove_var("PROPTEST_CASES");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::seeded(7);
        for _ in 0..1000 {
            let x = (3u8..9).new_value(&mut rng);
            assert!((3..9).contains(&x));
            let y = (1usize..=4).new_value(&mut rng);
            assert!((1..=4).contains(&y));
            let f = (0.5..2.5f64).new_value(&mut rng);
            assert!((0.5..2.5).contains(&f));
        }
    }

    #[test]
    fn determinism_per_seed() {
        let draw = |seed| {
            let mut rng = TestRng::seeded(seed);
            prop::collection::vec(0u64..1000, 5..10).new_value(&mut rng)
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn btree_set_hits_target_size() {
        let mut rng = TestRng::seeded(1);
        for _ in 0..100 {
            let s = prop::collection::btree_set(0usize..42, 2..20).new_value(&mut rng);
            assert!((2..20).contains(&s.len()), "{}", s.len());
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::seeded(5);
        let strat = (1usize..=3).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(0.0..1.0f64, n)).prop_map(|(n, v)| (n, v.len()))
        });
        for _ in 0..50 {
            let (n, len) = strat.new_value(&mut rng);
            assert_eq!(n, len);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_tuples_and_rejects((a, b) in (0u64..100, 0u64..100), mut c in 0u64..10) {
            c += 1;
            prop_assume!(a != b);
            prop_assert!(a < 100 && b < 100 && c <= 10);
            prop_assert_eq!(c, c);
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(x in 0.0..1.0f64) {
            prop_assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn regressions_parse_native_and_legacy_tokens() {
        let text = "\
# This file was generated by a test runner.\n\
# Comment lines are ignored.\n\
cc 00000000000000ff # shrinks to x = 3\n\
cc 5e65bb946bb2fecfc54adc674f54b07ee18afb9ad4d8343734bf107606ada04a # legacy 256-bit\n\
cc not-hex-at-all\n\
unrelated line\n";
        let seeds = crate::parse_regressions(text);
        assert_eq!(seeds.len(), 2);
        assert_eq!(seeds[0], 0xff);
        // Legacy token folds deterministically (stable across runs).
        let again = crate::parse_regressions(text);
        assert_eq!(seeds, again);
        assert_ne!(seeds[1], 0);
    }

    #[test]
    fn replayed_seed_reproduces_the_case_inputs() {
        // A case seed fully determines the drawn inputs: two fresh
        // generators from the same seed draw identical values.
        let seed = 0xdead_beef_u64;
        let draw = || {
            let mut rng = TestRng::seeded(seed);
            ((0u64..1000).new_value(&mut rng), (0.0..1.0f64).new_value(&mut rng))
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn missing_regressions_file_yields_no_seeds() {
        assert!(crate::persisted_seeds("no/such/dir/nothing.rs").is_empty());
    }
}
