//! Offline-compatible `criterion` shim.
//!
//! Keeps the call-site API (`criterion_group!`/`criterion_main!`,
//! `Criterion::bench_function`, `Bencher::iter`/`iter_batched`,
//! `BatchSize`) and reports a coarse mean wall-clock per iteration.
//! There is no warm-up, outlier analysis, or HTML report — this is just
//! enough to keep bench targets compiling and runnable offline.

use std::time::{Duration, Instant};

/// How batched inputs are grouped; accepted and ignored (every batch is
/// a single input here).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    /// Minimum measurement time per benchmark.
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { measure_for: Duration::from_millis(200) }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher =
            Bencher { total: Duration::ZERO, iterations: 0, budget: self.measure_for };
        routine(&mut bencher);
        let per_iter = if bencher.iterations == 0 {
            Duration::ZERO
        } else {
            bencher.total / u32::try_from(bencher.iterations.min(u64::from(u32::MAX))).unwrap_or(1)
        };
        println!("bench {name:<40} {per_iter:>12.2?}/iter ({} iters)", bencher.iterations);
        self
    }
}

pub struct Bencher {
    total: Duration,
    iterations: u64,
    budget: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.total += t0.elapsed();
            self.iterations += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }

    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut f: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let start = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(f(input));
            self.total += t0.elapsed();
            self.iterations += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
    }
}

/// Group benchmark functions under one runner entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion { measure_for: Duration::from_millis(1) };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_consumes_setup() {
        let mut c = Criterion { measure_for: Duration::from_millis(1) };
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
