//! Offline-compatible `parking_lot` shim.
//!
//! Thin non-poisoning wrappers over `std::sync` primitives exposing the
//! subset of the real crate's API this workspace uses: `lock()`,
//! `try_lock()`, `read()`, `write()`, `into_inner()`, `get_mut()`.
//! Poisoned locks (a panicking holder) are recovered transparently, which
//! matches parking_lot's no-poisoning semantics.

use std::sync::{self, TryLockError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(0);
        let _g = m.lock();
        assert!(m.try_lock().is_none());
    }
}
