//! Offline-compatible `parking_lot` shim.
//!
//! Thin non-poisoning wrappers over `std::sync` primitives exposing the
//! subset of the real crate's API this workspace uses: `lock()`,
//! `try_lock()`, `read()`, `write()`, `into_inner()`, `get_mut()`, and
//! `Condvar` (`wait`/`wait_for`/`notify_one`/`notify_all`).
//! Poisoned locks (a panicking holder) are recovered transparently, which
//! matches parking_lot's no-poisoning semantics.

use std::sync::{self, TryLockError};
use std::time::Duration;

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Whether a timed condition-variable wait returned because of a timeout
/// (mirrors `parking_lot::WaitTimeoutResult`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than a notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable with parking_lot's guard-in-place API: `wait` takes
/// `&mut MutexGuard` and re-acquires the same lock before returning.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Block until notified, releasing the guard's lock while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |g| self.inner.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(guard, |g| {
            let (g, res) = self.inner.wait_timeout(g, timeout).unwrap_or_else(|e| e.into_inner());
            timed_out = res.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }

    /// Wake one parked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every parked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Run `f` on the guard by value (std's condvar API takes guards by move)
/// while the caller keeps a `&mut` slot (parking_lot's API takes `&mut`).
fn replace_guard<T>(
    slot: &mut MutexGuard<'_, T>,
    f: impl FnOnce(MutexGuard<'_, T>) -> MutexGuard<'_, T>,
) {
    // SAFETY: `slot` is exclusively borrowed; the guard is read out, handed
    // to `f` (which always returns a live guard for the same mutex), and
    // written back before returning. If `f` unwinds the slot would hold a
    // dropped guard, so the bomb aborts instead of exposing it — std's
    // condvar waits only fail on poisoning, which `unwrap_or_else` above
    // already absorbs, so the abort path is unreachable in practice.
    struct AbortOnUnwind;
    impl Drop for AbortOnUnwind {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    unsafe {
        let bomb = AbortOnUnwind;
        let guard = std::ptr::read(slot);
        let new_guard = f(guard);
        std::ptr::write(slot, new_guard);
        std::mem::forget(bomb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(0);
        let _g = m.lock();
        assert!(m.try_lock().is_none());
    }

    #[test]
    fn condvar_wakes_waiter() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                let (m, cv) = &*pair;
                let mut ready = m.lock();
                while !*ready {
                    cv.wait(&mut ready);
                }
            })
        };
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        waiter.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }
}
