//! Offline-compatible `serde` shim.
//!
//! The real crates.io `serde` cannot be fetched in this build environment,
//! so the workspace vendors a minimal replacement with the same import
//! surface (`use serde::{Serialize, Deserialize}` plus
//! `#[derive(Serialize, Deserialize)]`). Instead of serde's
//! visitor-based architecture, both traits converge on a single
//! JSON-shaped [`Value`] tree; `serde_json` (also vendored) renders and
//! parses that tree. The subset implemented is exactly what this
//! workspace uses: plain structs with named fields, newtype structs,
//! unit-variant and struct-variant enums, and the std scalar/collection
//! types appearing in their fields.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-shaped dynamic value: the meeting point of serialization and
/// deserialization.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (always < 0; non-negative parses as `U64`).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, with insertion order preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the object entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow the elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Deserialization error: what was expected, what was found.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// An error with a pre-formatted message.
    pub fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }

    /// "expected X while deserializing Y, found Z"-style error.
    pub fn expected(what: &str, context: &str, found: &Value) -> Self {
        Self::new(format!("expected {what} for {context}, found {}", found.kind()))
    }

    /// Missing-field error.
    pub fn missing(field: &str) -> Self {
        Self::new(format!("missing field `{field}`"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types convertible to a [`Value`].
pub trait Serialize {
    /// Convert to the dynamic value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct from the dynamic value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Called when a struct field is absent from the serialized map.
    /// Only `Option` admits absence; everything else errors.
    fn from_missing(field: &str) -> Result<Self, DeError> {
        Err(DeError::missing(field))
    }
}

/// Derive-support helper: fetch and deserialize one struct field.
pub fn field<T: Deserialize>(map: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| DeError::new(format!("field `{name}`: {e}"))),
        None => T::from_missing(name),
    }
}

/// Derive-support helper for `#[serde(default)]` fields: absent fields
/// fall back to `Default::default()` instead of erroring, so records
/// serialized before the field existed still deserialize.
pub fn field_or_default<T: Deserialize + Default>(
    map: &[(String, Value)],
    name: &str,
) -> Result<T, DeError> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| DeError::new(format!("field `{name}`: {e}"))),
        None => Ok(T::default()),
    }
}

// ---------------------------------------------------------------------------
// Scalar impls
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", "bool", other)),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(DeError::expected("unsigned integer", stringify!($t), other)),
                };
                <$t>::try_from(n).map_err(|_| DeError::new(
                    format!("integer {n} out of range for {}", stringify!($t)),
                ))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match v {
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError::new(format!("integer {n} out of range")))?,
                    Value::I64(n) => *n,
                    Value::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(DeError::expected("integer", stringify!($t), other)),
                };
                <$t>::try_from(n).map_err(|_| DeError::new(
                    format!("integer {n} out of range for {}", stringify!($t)),
                ))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError::expected("number", "f64", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", "String", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", "char", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", "Vec", other)),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Map(m) => m
                .iter()
                .map(|(k, val)| {
                    V::from_value(val)
                        .map(|parsed| (k.clone(), parsed))
                        .map_err(|e| DeError::new(format!("map key `{k}`: {e}")))
                })
                .collect(),
            other => Err(DeError::expected("object", "BTreeMap", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let found = items.len();
        items.try_into().map_err(|_| {
            DeError::new(format!("expected array of length {N}, found {found} elements"))
        })
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = [$($i),+].len();
                let a = v.as_array()
                    .ok_or_else(|| DeError::expected("array", "tuple", v))?;
                if a.len() != LEN {
                    return Err(DeError::new(format!(
                        "expected {LEN}-element array for tuple, found {}", a.len()
                    )));
                }
                Ok(($($t::from_value(&a[$i])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(u8::from_value(&42u8.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        assert!(bool::from_value(&true.to_value()).unwrap());
    }

    #[test]
    fn integer_coercions_into_f64() {
        assert_eq!(f64::from_value(&Value::U64(3)).unwrap(), 3.0);
        assert_eq!(f64::from_value(&Value::I64(-3)).unwrap(), -3.0);
    }

    #[test]
    fn option_absence_and_null() {
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::from_missing("x").unwrap(), None);
        assert!(u64::from_missing("x").is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u64, "a".to_string()), (2, "b".to_string())];
        let back = Vec::<(u64, String)>::from_value(&v.to_value()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u64::from_value(&Value::I64(-1)).is_err());
    }
}
