//! Offline-compatible `rand` placeholder.
//!
//! The workspace declares `rand` but all randomness actually flows
//! through the simulator's own seeded `NoiseSource` and the proptest
//! shim's `TestRng`, so no API surface is required here. The crate
//! exists only to satisfy the dependency graph offline.
