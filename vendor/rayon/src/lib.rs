//! Offline-compatible `rayon` shim backed by a real thread pool.
//!
//! Earlier revisions of this shim returned *sequential* std iterators from
//! `par_iter()` so call sites kept rayon's spelling without gaining any
//! parallelism. This revision executes the same call sites on a
//! work-stealing thread pool while keeping the property the workspace's
//! golden-trace and determinism gates depend on: **results are
//! byte-identical to the sequential run at any thread count**.
//!
//! # Execution model
//!
//! Every parallel pipeline bottoms out in an indexed producer (a slice, an
//! owned `Vec`, or a `Range<usize>`) with adapters (`map`,
//! `flat_map_iter`) composed on top. Driving a pipeline splits the index
//! space `0..len` into contiguous chunks whose boundaries depend **only on
//! `len`** — never on the thread count — and workers self-schedule by
//! atomically claiming the next unclaimed chunk (chunk-granular work
//! stealing from a shared injector). Each chunk's outputs are buffered
//! locally in index order, and the final collection concatenates chunk
//! buffers in chunk order, so `collect()` observes exactly the sequential
//! element order.
//!
//! # Determinism policy
//!
//! * `collect()` / `to_vec()` are index-ordered: bit-identical to the
//!   sequential run regardless of `RAYON_NUM_THREADS`.
//! * Reductions (`sum()`, `count()`) materialize in index order first and
//!   combine sequentially on the calling thread, so floating-point
//!   reductions keep a fixed combine order at any thread count.
//! * Simulator noise in this workspace is addressed by `(seed, kernel,
//!   config, iteration)`, not by execution order, so running items
//!   concurrently cannot perturb values — only wall-clock.
//!
//! # Thread-count knobs
//!
//! The global pool is sized once from `RAYON_NUM_THREADS` (unset, `0`, or
//! unparsable ⇒ `std::thread::available_parallelism()`). `1` is a true
//! sequential fallback: no worker threads are spawned and drives run
//! inline on the caller. [`with_num_threads`] runs a closure against a
//! temporary pool of an explicit size — the hook the parallel-determinism
//! tests and the `pipeline_parallel` bench use to compare thread counts
//! inside one process.
//!
//! # Panics
//!
//! A panic inside a parallel closure aborts remaining chunks, is carried
//! back to the calling thread, and resumes there — same observable
//! behavior as the sequential run (modulo which item panics first when
//! several would).

use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

// ---------------------------------------------------------------------------
// Thread pool
// ---------------------------------------------------------------------------

/// A lifetime-erased unit of work: a pointer to a [`DriveShared`] plus the
/// monomorphized entry point that knows its concrete type.
struct Job {
    data: *const (),
    exec: unsafe fn(*const ()),
}

// SAFETY: the pointed-to `DriveShared` is `Sync` (enforced where jobs are
// created) and outlives the job — the drive that enqueued it blocks until
// every enqueued job has run to completion before returning or unwinding.
unsafe impl Send for Job {}

/// The shared injector queue all workers (and helping waiters) pull from.
struct Injector {
    queue: Mutex<VecDeque<Job>>,
    /// Signaled on new work, on drive completion, and on shutdown.
    signal: Condvar,
    shutdown: AtomicBool,
}

impl Injector {
    fn new() -> Self {
        Self {
            queue: Mutex::new(VecDeque::new()),
            signal: Condvar::new(),
            shutdown: AtomicBool::new(false),
        }
    }

    fn push(&self, job: Job) {
        self.queue.lock().push_back(job);
        self.signal.notify_all();
    }

    fn try_pop(&self) -> Option<Job> {
        self.queue.lock().pop_front()
    }
}

/// A pool of `threads − 1` OS worker threads plus the calling thread,
/// which always participates in its own drives (so a 1-thread pool spawns
/// nothing and runs everything inline).
pub struct ThreadPool {
    injector: Arc<Injector>,
    threads: usize,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Build a pool where drives use `threads` total threads (min 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let injector = Arc::new(Injector::new());
        let workers = (1..threads)
            .map(|i| {
                let inj = Arc::clone(&injector);
                std::thread::Builder::new()
                    .name(format!("rayon-shim-{i}"))
                    .spawn(move || worker_loop(&inj))
                    .expect("spawn rayon shim worker")
            })
            .collect();
        Self { injector, threads, workers }
    }

    /// Total threads drives on this pool may use (including the caller).
    pub fn num_threads(&self) -> usize {
        self.threads
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.injector.shutdown.store(true, Ordering::Release);
        self.injector.signal.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Dedicated worker: run jobs until shutdown.
fn worker_loop(inj: &Injector) {
    loop {
        let job = {
            let mut q = inj.queue.lock();
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if inj.shutdown.load(Ordering::Acquire) {
                    return;
                }
                inj.signal.wait(&mut q);
            }
        };
        // SAFETY: see `Job`'s Send rationale — the backing state is alive
        // until its drive observes this job's completion.
        unsafe { (job.exec)(job.data) };
    }
}

fn global_pool() -> &'static Arc<ThreadPool> {
    static POOL: OnceLock<Arc<ThreadPool>> = OnceLock::new();
    POOL.get_or_init(|| Arc::new(ThreadPool::new(env_thread_count())))
}

/// `RAYON_NUM_THREADS`, with rayon's convention: unset, `0`, or unparsable
/// means "use all available parallelism".
fn env_thread_count() -> usize {
    let available = || std::thread::available_parallelism().map_or(1, |n| n.get());
    match std::env::var("RAYON_NUM_THREADS").ok().and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(0) | None => available(),
        Some(n) => n,
    }
}

thread_local! {
    /// Stack of scoped pool overrides installed by [`with_num_threads`].
    static POOL_OVERRIDE: RefCell<Vec<Arc<ThreadPool>>> = const { RefCell::new(Vec::new()) };
}

fn current_pool() -> Arc<ThreadPool> {
    POOL_OVERRIDE.with(|s| s.borrow().last().cloned()).unwrap_or_else(|| Arc::clone(global_pool()))
}

/// Threads the next drive on this thread will use.
pub fn current_num_threads() -> usize {
    current_pool().num_threads()
}

/// Run `f` with parallel drives on this thread using a temporary pool of
/// exactly `threads` threads, then tear the pool down. Nested calls stack;
/// the override is per-thread.
///
/// This exists for determinism tests and speedup benches that must compare
/// thread counts within one process, where the `RAYON_NUM_THREADS`-sized
/// global pool is already frozen.
pub fn with_num_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    let pool = Arc::new(ThreadPool::new(threads));
    POOL_OVERRIDE.with(|s| s.borrow_mut().push(pool));
    // Pop the override even if `f` unwinds, so a caught panic (e.g. a
    // #[should_panic] test) cannot leak the temporary pool override.
    struct PopOnDrop;
    impl Drop for PopOnDrop {
        fn drop(&mut self) {
            POOL_OVERRIDE.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
    let _pop = PopOnDrop;
    f()
}

// ---------------------------------------------------------------------------
// Drive: ordered chunked execution of one pipeline
// ---------------------------------------------------------------------------

/// Upper bound on chunks per drive. Boundaries derive from `len` alone so
/// chunk partials (and thus any per-chunk buffering) are identical at
/// every thread count.
const MAX_CHUNKS: usize = 128;

fn chunk_layout(len: usize) -> (usize, usize) {
    let n_chunks = len.clamp(1, MAX_CHUNKS);
    let chunk_len = len.div_ceil(n_chunks);
    (len.div_ceil(chunk_len), chunk_len)
}

/// Per-drive shared state: the producer, the chunk cursor, ordered result
/// buffers, a completion latch, and the first captured panic.
struct DriveShared<'a, P: IndexedParallelProducer> {
    producer: &'a P,
    len: usize,
    n_chunks: usize,
    chunk_len: usize,
    next_chunk: AtomicUsize,
    /// `(chunk index, items)` in completion order; sorted by chunk index
    /// at assembly, restoring exact sequential order.
    results: Mutex<Vec<(usize, Vec<P::Item>)>>,
    /// Enqueued helper jobs that have not yet finished.
    pending: AtomicUsize,
    /// Set on the first panic: remaining chunks are abandoned.
    abort: AtomicBool,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl<'a, P: IndexedParallelProducer + Sync> DriveShared<'a, P> {
    fn new(producer: &'a P, len: usize, helpers: usize) -> Self {
        let (n_chunks, chunk_len) = chunk_layout(len);
        Self {
            producer,
            len,
            n_chunks,
            chunk_len,
            next_chunk: AtomicUsize::new(0),
            results: Mutex::new(Vec::with_capacity(n_chunks)),
            pending: AtomicUsize::new(helpers),
            abort: AtomicBool::new(false),
            panic: Mutex::new(None),
        }
    }

    /// Claim and execute chunks until none remain (or a peer panicked).
    fn work(&self) {
        loop {
            let c = self.next_chunk.fetch_add(1, Ordering::Relaxed);
            if c >= self.n_chunks || self.abort.load(Ordering::Relaxed) {
                return;
            }
            let start = c * self.chunk_len;
            let end = (start + self.chunk_len).min(self.len);
            let mut items = Vec::with_capacity(end - start);
            for i in start..end {
                self.producer.produce_into(i, &mut |item| items.push(item));
            }
            self.results.lock().push((c, items));
        }
    }

    /// `work()` with panic capture — the shape both helpers and the caller
    /// run.
    fn work_catching(&self) {
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| self.work())) {
            self.abort.store(true, Ordering::Relaxed);
            let mut slot = self.panic.lock();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
    }

    /// Helper-job entry: work, then arrive at the latch.
    fn run_helper(&self, inj: &Injector) {
        self.work_catching();
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last helper done: wake the (possibly parked) driving thread.
            inj.signal.notify_all();
        }
    }
}

/// Monomorphized trampoline stored in [`Job::exec`]: recover the concrete
/// `(DriveShared, &Injector)` pair and run one helper.
///
/// SAFETY contract: `data` must point to a live pair for the duration of
/// the call; the enqueuing drive guarantees this by latching on
/// `pending == 0` before releasing the state.
unsafe fn run_helper_erased<P: IndexedParallelProducer + Sync>(data: *const ()) {
    let shared = &*(data as *const (DriveShared<'_, P>, &Injector));
    shared.0.run_helper(shared.1);
}

/// Execute a full pipeline, returning its items in sequential order.
fn drive<P: IndexedParallelProducer + Sync>(producer: P) -> Vec<P::Item> {
    let len = producer.p_len();
    if len == 0 {
        return Vec::new();
    }
    let pool = current_pool();
    let (n_chunks, _) = chunk_layout(len);
    let helpers = (pool.num_threads() - 1).min(n_chunks - 1);

    if helpers == 0 {
        // Sequential fallback: same chunk layout, same order, no threads.
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            producer.produce_into(i, &mut |item| out.push(item));
        }
        return out;
    }

    let inj: &Injector = &pool.injector;
    let shared = (DriveShared::new(&producer, len, helpers), inj);
    for _ in 0..helpers {
        inj.push(Job {
            data: &shared as *const (DriveShared<'_, P>, &Injector) as *const (),
            exec: run_helper_erased::<P>,
        });
    }

    let state = &shared.0;
    state.work_catching();

    // Latch: every enqueued helper job must finish before `shared` (which
    // they reference) can be released. While waiting, help drain the
    // injector — a queued job may belong to this drive (a busy pool) or to
    // a nested drive parked the same way; executing it is always progress
    // and prevents mutual-wait stalls.
    while state.pending.load(Ordering::Acquire) != 0 {
        if let Some(job) = inj.try_pop() {
            // SAFETY: same contract as `worker_loop`.
            unsafe { (job.exec)(job.data) };
            continue;
        }
        let mut q = inj.queue.lock();
        if state.pending.load(Ordering::Acquire) != 0 && q.is_empty() {
            // Timed park: completion signals race with queue pushes, and a
            // bounded wait keeps an unlucky lost wakeup from becoming a
            // hang instead of a microsecond blip.
            inj.signal.wait_for(&mut q, Duration::from_millis(1));
        }
    }

    if let Some(payload) = state.panic.lock().take() {
        resume_unwind(payload);
    }

    let mut buffers = std::mem::take(&mut *state.results.lock());
    buffers.sort_unstable_by_key(|(c, _)| *c);
    let mut out = Vec::with_capacity(len);
    for (_, items) in buffers {
        out.extend(items);
    }
    out
}

// ---------------------------------------------------------------------------
// Producers and adapters
// ---------------------------------------------------------------------------

/// Internal engine trait: a pipeline stage that can produce the items for
/// one source index into a sink. Composition happens per index, so adapter
/// chains of any depth drive through one virtual call layer per stage.
#[doc(hidden)]
pub trait IndexedParallelProducer {
    /// The element type this stage yields.
    type Item: Send;

    /// Number of source indices.
    fn p_len(&self) -> usize;

    /// Produce every item derived from source index `index`, in order.
    fn produce_into(&self, index: usize, sink: &mut dyn FnMut(Self::Item));
}

/// Borrowing parallel iterator over a slice.
pub struct ParSlice<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> IndexedParallelProducer for ParSlice<'a, T> {
    type Item = &'a T;

    fn p_len(&self) -> usize {
        self.slice.len()
    }

    fn produce_into(&self, index: usize, sink: &mut dyn FnMut(Self::Item)) {
        sink(&self.slice[index]);
    }
}

/// Owning parallel iterator over a `Vec`.
///
/// Items move out of shared storage from worker threads, so each element
/// sits behind its own `Mutex<Option<T>>` slot; every slot is taken
/// exactly once (chunk claims are disjoint), making the lock uncontended.
pub struct ParVec<T> {
    slots: Vec<Mutex<Option<T>>>,
}

impl<T: Send> IndexedParallelProducer for ParVec<T> {
    type Item = T;

    fn p_len(&self) -> usize {
        self.slots.len()
    }

    fn produce_into(&self, index: usize, sink: &mut dyn FnMut(Self::Item)) {
        let item = self.slots[index].lock().take().expect("each index is claimed exactly once");
        sink(item);
    }
}

/// Parallel iterator over a `usize` range.
pub struct ParRange {
    range: Range<usize>,
}

impl IndexedParallelProducer for ParRange {
    type Item = usize;

    fn p_len(&self) -> usize {
        self.range.len()
    }

    fn produce_into(&self, index: usize, sink: &mut dyn FnMut(Self::Item)) {
        sink(self.range.start + index);
    }
}

/// `map` adapter.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, F, R> IndexedParallelProducer for Map<B, F>
where
    B: IndexedParallelProducer,
    F: Fn(B::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn p_len(&self) -> usize {
        self.base.p_len()
    }

    fn produce_into(&self, index: usize, sink: &mut dyn FnMut(Self::Item)) {
        self.base.produce_into(index, &mut |item| sink((self.f)(item)));
    }
}

/// `flat_map_iter` adapter: one sequential iterator per item, spliced in
/// index order.
pub struct FlatMapIter<B, F> {
    base: B,
    f: F,
}

impl<B, F, U> IndexedParallelProducer for FlatMapIter<B, F>
where
    B: IndexedParallelProducer,
    F: Fn(B::Item) -> U + Sync,
    U: IntoIterator,
    U::Item: Send,
{
    type Item = U::Item;

    fn p_len(&self) -> usize {
        self.base.p_len()
    }

    fn produce_into(&self, index: usize, sink: &mut dyn FnMut(Self::Item)) {
        self.base.produce_into(index, &mut |item| {
            for out in (self.f)(item) {
                sink(out);
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Public iterator API
// ---------------------------------------------------------------------------

/// The user-facing parallel iterator interface (rayon's spelling).
pub trait ParallelIterator: IndexedParallelProducer + Sized {
    /// Transform every item.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
        R: Send,
    {
        Map { base: self, f }
    }

    /// Map each item to a *sequential* iterator and flatten, preserving
    /// order (rayon's cheap flatten for iterators that aren't themselves
    /// parallel).
    fn flat_map_iter<U, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        F: Fn(Self::Item) -> U + Sync,
        U: IntoIterator,
        U::Item: Send,
    {
        FlatMapIter { base: self, f }
    }

    /// Execute and collect into `C` in sequential element order.
    fn collect<C>(self) -> C
    where
        Self: Sync,
        C: FromIterator<Self::Item>,
    {
        drive(self).into_iter().collect()
    }

    /// Execute and collect into a `Vec` in sequential element order.
    fn to_vec(self) -> Vec<Self::Item>
    where
        Self: Sync,
    {
        drive(self)
    }

    /// Execute and sum. Items materialize in parallel; the combine runs
    /// sequentially in index order on the caller, so floating-point sums
    /// are bit-identical at any thread count.
    fn sum<S>(self) -> S
    where
        Self: Sync,
        S: std::iter::Sum<Self::Item>,
    {
        drive(self).into_iter().sum()
    }

    /// Execute and count produced items.
    fn count(self) -> usize
    where
        Self: Sync,
    {
        drive(self.map(|_| ())).len()
    }

    /// Execute `f` on every item (no ordering guarantee between threads,
    /// matching rayon).
    fn for_each<F>(self, f: F)
    where
        Self: Sync,
        F: Fn(Self::Item) + Sync,
    {
        drive(self.map(f));
    }
}

impl<P: IndexedParallelProducer + Sized> ParallelIterator for P {}

/// `.par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed element type.
    type Item: Send + 'a;
    /// The borrowing parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Parallel iterator over `&self`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;

    fn par_iter(&'a self) -> Self::Iter {
        ParSlice { slice: self }
    }
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;

    fn par_iter(&'a self) -> Self::Iter {
        ParSlice { slice: self }
    }
}

/// `.into_par_iter()` on owned collections.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The owning parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Consume `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;

    fn into_par_iter(self) -> Self::Iter {
        ParVec { slots: self.into_iter().map(|t| Mutex::new(Some(t))).collect() }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = ParRange;

    fn into_par_iter(self) -> Self::Iter {
        ParRange { range: self }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_iter_matches_sequential() {
        let xs = vec![1, 2, 3];
        let doubled: Vec<i32> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let sum: usize = (0..5usize).into_par_iter().sum();
        assert_eq!(sum, 10);
    }

    #[test]
    fn collect_is_index_ordered_at_every_thread_count() {
        let n = 1000usize;
        let expected: Vec<usize> = (0..n).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8] {
            let got: Vec<usize> =
                with_num_threads(threads, || (0..n).into_par_iter().map(|i| i * i).collect());
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn float_sum_is_bit_identical_across_thread_counts() {
        let xs: Vec<f64> = (0..10_000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let sequential: f64 = xs.iter().sum();
        for threads in [1, 2, 7] {
            let parallel: f64 = with_num_threads(threads, || xs.par_iter().map(|&x| x).sum());
            assert_eq!(parallel.to_bits(), sequential.to_bits(), "threads = {threads}");
        }
    }

    #[test]
    fn flat_map_iter_preserves_order() {
        let expected: Vec<usize> = (0..200).flat_map(|i| 0..i % 5).collect();
        let got: Vec<usize> = with_num_threads(4, || {
            (0..200usize).into_par_iter().flat_map_iter(|i| 0..i % 5).collect()
        });
        assert_eq!(got, expected);
    }

    #[test]
    fn into_par_iter_moves_items_once() {
        let xs: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let lens: Vec<usize> =
            with_num_threads(3, || xs.clone().into_par_iter().map(|s| s.len()).collect());
        assert_eq!(lens, xs.iter().map(String::len).collect::<Vec<_>>());
    }

    #[test]
    fn work_actually_lands_on_pool_threads() {
        use std::collections::HashSet;
        let names: HashSet<String> = with_num_threads(4, || {
            (0..64usize)
                .into_par_iter()
                .map(|_| {
                    // Skew the schedule so helpers get a chance to claim.
                    std::thread::sleep(Duration::from_millis(1));
                    std::thread::current().name().unwrap_or("main").to_string()
                })
                .collect::<Vec<_>>()
                .into_iter()
                .collect()
        });
        assert!(names.len() > 1, "expected multiple executing threads, got {names:?}");
    }

    #[test]
    fn panics_propagate_to_caller() {
        let result = std::panic::catch_unwind(|| {
            with_num_threads(4, || {
                (0..100usize).into_par_iter().for_each(|i| {
                    if i == 37 {
                        panic!("boom at {i}");
                    }
                });
            })
        });
        assert!(result.is_err(), "worker panic must resurface on the caller");
    }

    #[test]
    fn nested_drives_do_not_deadlock() {
        let total: usize = with_num_threads(2, || {
            (0..8usize)
                .into_par_iter()
                .map(|i| (0..8usize).into_par_iter().map(|j| i * j).sum::<usize>())
                .sum()
        });
        let expected: usize = (0..8).map(|i| (0..8).map(|j| i * j).sum::<usize>()).sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<i32> = Vec::<i32>::new().par_iter().map(|x| *x).collect();
        assert!(empty.is_empty());
        let one: Vec<i32> = vec![7].par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn current_num_threads_reflects_override() {
        assert!(current_num_threads() >= 1);
        with_num_threads(3, || assert_eq!(current_num_threads(), 3));
    }

    #[test]
    fn chunk_layout_is_len_deterministic() {
        for len in [1, 2, 127, 128, 129, 1000, 100_000] {
            let (n, c) = chunk_layout(len);
            assert!(n <= MAX_CHUNKS);
            assert!(c * n >= len && c * (n - 1) < len, "len={len} n={n} c={c}");
        }
    }
}
