//! Offline-compatible `rayon` shim.
//!
//! Provides `par_iter()` / `into_par_iter()` entry points that return the
//! corresponding *sequential* std iterators, so call sites keep rayon's
//! spelling (`xs.par_iter().map(..).collect()`) and gain parallelism for
//! free if the real crate is ever restored. Correctness is identical;
//! only wall-clock differs.

pub mod prelude {
    pub use super::{IntoParallelIterator, IntoParallelRefIterator, ParallelIteratorExt};
}

/// Rayon methods that have no sequential std spelling; delegate to the
/// equivalent `Iterator` adapters.
pub trait ParallelIteratorExt: Iterator + Sized {
    fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
    where
        U: IntoIterator,
        F: FnMut(Self::Item) -> U,
    {
        self.flat_map(f)
    }
}

impl<I: Iterator> ParallelIteratorExt for I {}

pub trait IntoParallelRefIterator<'a> {
    type Item: 'a;
    type Iter: Iterator<Item = Self::Item>;

    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;

    fn par_iter(&'a self) -> Self::Iter {
        self.iter()
    }
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;

    fn par_iter(&'a self) -> Self::Iter {
        self.iter()
    }
}

pub trait IntoParallelIterator {
    type Item;
    type Iter: Iterator<Item = Self::Item>;

    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;

    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = std::ops::Range<usize>;

    fn into_par_iter(self) -> Self::Iter {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_sequential() {
        let xs = vec![1, 2, 3];
        let doubled: Vec<i32> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        let sum: usize = (0..5usize).into_par_iter().sum();
        assert_eq!(sum, 10);
    }
}
