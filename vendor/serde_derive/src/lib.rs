//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde shim.
//!
//! The real serde_derive depends on syn/quote, which are unavailable in
//! this offline build, so the item is parsed directly from the
//! `proc_macro::TokenStream`. Supported shapes — exactly what this
//! workspace declares — are structs with named fields, tuple structs,
//! unit structs, and enums whose variants are unit, newtype, tuple, or
//! struct-like. Generic types are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field: its identifier plus whether it carried
/// `#[serde(default)]` (absent values fall back to `Default::default()`).
#[derive(Debug)]
struct NamedField {
    name: String,
    default: bool,
}

#[derive(Debug)]
enum Fields {
    Named(Vec<NamedField>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
enum Input {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

/// Skip one attribute (`#` followed by a bracket group) if present.
/// Returns true when an attribute was consumed.
fn skip_attr(tokens: &[TokenTree], i: &mut usize) -> bool {
    if let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() == '#' {
            if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                if g.delimiter() == Delimiter::Bracket {
                    *i += 2;
                    return true;
                }
            }
        }
    }
    false
}

/// True when the attribute starting at `i` (already known to be `#[...]`)
/// is `#[serde(default)]`. Other serde attributes are still just skipped.
fn attr_is_serde_default(tokens: &[TokenTree], i: usize) -> bool {
    match tokens.get(i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '#' => {}
        _ => return false,
    }
    let Some(TokenTree::Group(g)) = tokens.get(i + 1) else { return false };
    if g.delimiter() != Delimiter::Bracket {
        return false;
    }
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    match (inner.first(), inner.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(a) if a.to_string() == "default"))
        }
        _ => false,
    }
}

/// Skip `pub`, `pub(crate)`, `pub(in ...)` if present.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Parse the named fields of a brace-delimited body: `a: T, b: U, ...`.
fn parse_named_fields(body: &[TokenTree]) -> Vec<NamedField> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let mut default = false;
        loop {
            if i < body.len() && attr_is_serde_default(body, i) {
                default = true;
            }
            if !skip_attr(body, &mut i) {
                break;
            }
        }
        skip_vis(body, &mut i);
        if i >= body.len() {
            break;
        }
        let name = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected field name, found `{other}`"),
        };
        i += 1;
        match &body[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => {
                panic!("serde shim derive: expected `:` after field `{name}`, found `{other}`")
            }
        }
        // Consume the type: everything up to a comma at angle-bracket depth 0.
        let mut angle: i32 = 0;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(NamedField { name, default });
    }
    fields
}

/// Count the fields of a paren-delimited tuple body.
fn count_tuple_fields(body: &[TokenTree]) -> usize {
    if body.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle: i32 = 0;
    for (idx, t) in body.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            // A trailing comma does not start a new field.
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 && idx + 1 < body.len() => {
                count += 1;
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(body: &[TokenTree]) -> Vec<(String, Fields)> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        while skip_attr(body, &mut i) {}
        if i >= body.len() {
            break;
        }
        let name = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, found `{other}`"),
        };
        i += 1;
        let fields = match body.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Fields::Named(parse_named_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Fields::Tuple(count_tuple_fields(&inner))
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        while i < body.len() {
            if let TokenTree::Punct(p) = &body[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push((name, fields));
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    while skip_attr(&tokens, &mut i) {}
    skip_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, found `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found `{other}`"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic types are not supported (type `{name}`)");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Named(parse_named_fields(&inner))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Tuple(count_tuple_fields(&inner))
                }
                _ => Fields::Unit,
            };
            Input::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    g.stream().into_iter().collect::<Vec<TokenTree>>()
                }
                other => panic!("serde shim derive: expected enum body, found `{other:?}`"),
            };
            Input::Enum { name, variants: parse_variants(&body) }
        }
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    }
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let code = match &parsed {
        Input::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            let f = &f.name;
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     #[allow(unused_variables, clippy::all)]\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    ),
                    Fields::Named(fnames) => {
                        let binds =
                            fnames.iter().map(|f| f.name.as_str()).collect::<Vec<_>>().join(", ");
                        let entries: Vec<String> = fnames
                            .iter()
                            .map(|f| {
                                let f = &f.name;
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{v}\"), \
                              ::serde::Value::Map(::std::vec![{}]))]),",
                            entries.join(", ")
                        )
                    }
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(x0) => ::serde::Value::Map(::std::vec![\
                         (::std::string::String::from(\"{v}\"), \
                          ::serde::Serialize::to_value(x0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Serialize::to_value(x{k})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{v}\"), \
                              ::serde::Value::Array(::std::vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     #[allow(unused_variables, clippy::all)]\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    code.parse().expect("serde shim derive: generated Serialize impl parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let code = match &parsed {
        Input::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            let helper = if f.default { "field_or_default" } else { "field" };
                            let f = &f.name;
                            format!("{f}: ::serde::{helper}(m, \"{f}\")?,")
                        })
                        .collect();
                    format!(
                        "let m = v.as_map().ok_or_else(|| \
                             ::serde::DeError::expected(\"object\", \"{name}\", v))?;\n\
                         ::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(" ")
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|k| format!("::serde::Deserialize::from_value(&a[{k}])?,"))
                        .collect();
                    format!(
                        "let a = v.as_array().ok_or_else(|| \
                             ::serde::DeError::expected(\"array\", \"{name}\", v))?;\n\
                         if a.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::DeError::new(\
                                 ::std::format!(\"expected {n} elements for {name}, found {{}}\", a.len())));\n\
                         }}\n\
                         ::std::result::Result::Ok({name}({}))",
                        inits.join(" ")
                    )
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     #[allow(unused_variables, clippy::all)]\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Named(fnames) => {
                        let inits: Vec<String> = fnames
                            .iter()
                            .map(|f| {
                                let helper = if f.default { "field_or_default" } else { "field" };
                                let f = &f.name;
                                format!("{f}: ::serde::{helper}(fm, \"{f}\")?,")
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{\n\
                                 let fm = inner.as_map().ok_or_else(|| \
                                     ::serde::DeError::expected(\"object\", \"{name}::{v}\", inner))?;\n\
                                 ::std::result::Result::Ok({name}::{v} {{ {} }})\n\
                             }}",
                            inits.join(" ")
                        ))
                    }
                    Fields::Tuple(1) => Some(format!(
                        "\"{v}\" => ::std::result::Result::Ok(\
                             {name}::{v}(::serde::Deserialize::from_value(inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&a[{k}])?,"))
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{\n\
                                 let a = inner.as_array().ok_or_else(|| \
                                     ::serde::DeError::expected(\"array\", \"{name}::{v}\", inner))?;\n\
                                 if a.len() != {n} {{\n\
                                     return ::std::result::Result::Err(::serde::DeError::new(\
                                         \"wrong tuple arity for {name}::{v}\"));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{v}({}))\n\
                             }}",
                            inits.join(" ")
                        ))
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     #[allow(unused_variables, clippy::all)]\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => ::std::result::Result::Err(::serde::DeError::new(\
                                     ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                                 let (tag, inner) = &m[0];\n\
                                 match tag.as_str() {{\n\
                                     {}\n\
                                     other => ::std::result::Result::Err(::serde::DeError::new(\
                                         ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => ::std::result::Result::Err(::serde::DeError::expected(\
                                 \"variant string or single-key object\", \"{name}\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            , unit_arms.join("\n"), data_arms.join("\n"))
        }
    };
    code.parse().expect("serde shim derive: generated Deserialize impl parses")
}
