//! Offline-compatible `serde_json` shim.
//!
//! Renders and parses the vendored serde [`Value`] tree as JSON. Numbers
//! are written with Rust's shortest-roundtrip formatting, so `f64`
//! coefficients survive save/load bit-for-bit (the guarantee the real
//! crate's `float_roundtrip` feature provides). The parser is a plain
//! recursive-descent JSON reader with a recursion cap, byte positions in
//! errors, and full string-escape handling.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization failure with position information.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
    line: usize,
    column: usize,
}

impl Error {
    fn at(message: impl Into<String>, text: &str, pos: usize) -> Self {
        let consumed = &text.as_bytes()[..pos.min(text.len())];
        let line = consumed.iter().filter(|&&b| b == b'\n').count() + 1;
        let column = pos - consumed.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1) + 1;
        Self { message: message.into(), line, column }
    }

    fn plain(message: impl Into<String>) -> Self {
        Self { message: message.into(), line: 0, column: 0 }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "{} at line {} column {}", self.message, self.line, self.column)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        out.push_str(&f.to_string());
    } else {
        // JSON has no Infinity/NaN; match the real crate's lossy `null`.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, pretty: bool, indent: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                }
                write_value(out, item, pretty, indent + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                }
                write_escaped(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, item, pretty, indent + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push('}');
        }
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), false, 0);
    Ok(out)
}

/// Serialize to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), true, 0);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self { text, bytes: text.as_bytes(), pos: 0 }
    }

    fn err(&self, message: impl Into<String>) -> Error {
        Error::at(message, self.text, self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("recursion limit exceeded"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.err(format!("unexpected character `{}`", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.text[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let raw = &self.text[start..self.pos];
        if raw.is_empty() || raw == "-" {
            return Err(self.err("malformed number"));
        }
        if !is_float {
            if let Ok(n) = raw.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = raw.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        raw.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::at(format!("malformed number `{raw}`"), self.text, start))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(self.err(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let c = self.text[self.pos..]
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("invalid utf-8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = &self.text[self.pos..end];
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parse a JSON document into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != s.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::from_value(&v).map_err(|e| Error::plain(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip() {
        let v = Value::Map(vec![
            ("a".into(), Value::F64(1.25)),
            ("b".into(), Value::Array(vec![Value::U64(1), Value::Null, Value::Bool(true)])),
            ("s".into(), Value::Str("line\n\"q\"".into())),
        ]);
        let s = to_string(&VWrap(v.clone())).unwrap();
        assert_eq!(parse_value(&s).unwrap(), v);
    }

    struct VWrap(Value);
    impl serde::Serialize for VWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn pretty_output_is_indented() {
        let s = to_string_pretty(&VWrap(Value::Map(vec![(
            "k".into(),
            Value::Array(vec![Value::U64(1)]),
        )])))
        .unwrap();
        assert!(s.contains("\n  \"k\""));
        assert_eq!(parse_value(&s).unwrap(), parse_value(&s.replace(['\n', ' '], "")).unwrap());
    }

    #[test]
    fn f64_roundtrips_bit_for_bit() {
        for f in [0.1f64, 1.0 / 3.0, 2.5e-17, 1.4e300, -1.2345678901234568e-4] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{f} → {s} → {back}");
        }
    }

    #[test]
    fn errors_carry_positions() {
        let e = parse_value("{\n  \"a\": oops\n}").unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("line 2"), "{msg}");
    }

    #[test]
    fn malformed_documents_error() {
        assert!(parse_value("{not json").is_err());
        assert!(parse_value("").is_err());
        assert!(parse_value("[1, 2").is_err());
        assert!(parse_value("{\"a\": 1} extra").is_err());
        assert!(parse_value(&("[".repeat(500) + &"]".repeat(500))).is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse_value(r#""A😀""#).unwrap(), Value::Str("A😀".into()));
    }
}
