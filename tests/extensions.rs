//! Integration tests for the extension features (objectives, confidence,
//! partitioning, runtime, persistence) on the real suite, wired end to end
//! across crates.

use acs::core::confidence::predict_with_confidence;
use acs::core::partition::{
    partition_budget, partition_budget_with, DemandCurve, PartitionObjective,
};
use acs::core::{CappedRuntime, Objective};
use acs::prelude::*;

fn machine() -> Machine {
    Machine::new(2014)
}

fn trained_without(benchmark: &str) -> (TrainedModel, Vec<KernelProfile>) {
    let m = machine();
    let apps = acs::kernels::app_instances();
    let mut training = Vec::new();
    let mut held = Vec::new();
    for app in &apps {
        for k in &app.kernels {
            let p = KernelProfile::collect(&m, k);
            if app.benchmark == benchmark {
                held.push(p);
            } else {
                training.push(p);
            }
        }
    }
    (train(&training, TrainingParams::default()).unwrap(), held)
}

#[test]
fn objectives_differ_sensibly_on_a_real_kernel() {
    let (model, held) = trained_without("CoMD");
    let predictor = Predictor::new(&model);
    let lj = held.iter().find(|p| p.kernel.name == "LJForce").unwrap();
    let predicted = predictor.predict(&lj.sample_pair());

    let pick = |o: Objective| o.select(&predicted.points).unwrap();
    let power_of = |c: Configuration| predicted.points[c.index()].power_w;

    let max_perf = pick(Objective::MaxPerf);
    let min_e = pick(Objective::MinEnergy);
    let capped = pick(Objective::MaxPerfUnderCap(18.0));

    assert!(power_of(min_e) <= power_of(max_perf));
    assert!(power_of(capped) <= 18.0 + 1e-9 || power_of(capped) <= power_of(min_e) + 1e-9);
    // EDP sits between energy and perf extremes in predicted power.
    let edp = pick(Objective::MinEnergyDelay);
    assert!(power_of(edp) >= power_of(min_e) - 1e-9);
    assert!(power_of(edp) <= power_of(max_perf) + 1e-9);
}

#[test]
fn risk_aversion_trades_perf_for_compliance_on_real_suite() {
    let m = machine();
    let (model, held) = trained_without("SMC");

    let mut compliance = [0usize; 2];
    let mut perf_sum = [0.0f64; 2];
    let mut cases = 0usize;
    for profile in &held {
        let bounded = predict_with_confidence(&model, &profile.sample_pair());
        for cap_point in profile.oracle_frontier().points() {
            let cap = cap_point.power_w;
            for (slot, z) in [(0usize, 0.0), (1usize, 2.0)] {
                let cfg = bounded.select_risk_averse(cap, z);
                let run = m.run(&profile.kernel, &cfg);
                if run.true_power_w() <= cap * (1.0 + 1e-9) {
                    compliance[slot] += 1;
                }
                perf_sum[slot] += 1.0 / run.time_s;
            }
            cases += 1;
        }
    }
    assert!(cases > 100);
    assert!(compliance[1] >= compliance[0], "risk aversion must help compliance");
    assert!(perf_sum[1] <= perf_sum[0] * 1.001, "and cost some performance");
}

#[test]
fn partitioner_handles_real_demand_curves() {
    let (model, _) = trained_without("LU");
    let predictor = Predictor::new(&model);
    let m = machine();
    let apps = acs::kernels::app_instances();

    let curve_for = |label: &str| {
        let app = apps.iter().find(|a| a.label() == label).unwrap();
        let frontiers: Vec<(f64, Frontier)> = app
            .kernels
            .iter()
            .map(|k| {
                let samples = SamplePair::new(
                    m.run_iter(k, &sample_config(Device::Cpu), 0),
                    m.run_iter(k, &sample_config(Device::Gpu), 1),
                );
                (k.weight, predictor.predict(&samples).frontier)
            })
            .collect();
        DemandCurve::from_frontiers(label, &frontiers)
    };

    let curves = vec![curve_for("CoMD"), curve_for("SMC Small")];
    let generous = partition_budget(&curves, 80.0, 0.5);
    assert!(generous.perfs.iter().all(|&p| p > 0.9), "{generous:?}");

    let tight_sum = partition_budget(&curves, 30.0, 0.5);
    let tight_fair = partition_budget_with(&curves, 30.0, 0.5, PartitionObjective::MaxMin);
    let min = |p: &acs::core::Partition| p.perfs.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(min(&tight_fair) >= min(&tight_sum) - 1e-9, "fairness lifts the floor");
}

#[test]
fn runtime_with_persisted_model_matches_in_memory_model() {
    let (model, _) = trained_without("LULESH");
    let dir = std::env::temp_dir().join("acs-ext-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");
    model.save(&path).unwrap();
    let reloaded = TrainedModel::load(&path).unwrap();

    let app =
        acs::kernels::app_instances().into_iter().find(|a| a.label() == "LULESH Small").unwrap();

    let mut rt_a = CappedRuntime::new(machine(), model, 22.0);
    let mut rt_b = CappedRuntime::new(machine(), reloaded, 22.0);
    let a = rt_a.run_app(&app, 3).unwrap();
    let b = rt_b.run_app(&app, 3).unwrap();
    assert_eq!(a, b, "persisted model must schedule identically");
    std::fs::remove_file(path).unwrap();
}

#[test]
fn boost_and_governor_substrates_compose() {
    use acs_sim::boost::{boosted_cpu_run, ThermalModel, BOOST_STATES};
    use acs_sim::{OndemandGovernor, PowerCalibration, TransitionModel};

    // The ondemand governor settles at max under load; boost then rides on
    // top for light thread counts; the transition model prices the walk.
    let gov = OndemandGovernor::default();
    let (state, moves) = gov.settle(CpuPState::MIN, 0.95);
    assert_eq!(state, CpuPState::MAX);
    assert!(moves >= 1);

    let kernel = acs::kernels::app_instances()[0].kernels[0].clone();
    let boosted = boosted_cpu_run(
        &kernel,
        &Configuration::cpu(1, state),
        &PowerCalibration::default(),
        &ThermalModel::default(),
        BOOST_STATES[1],
    );
    assert!(boosted.effective_freq_ghz >= state.freq_ghz());

    let t = TransitionModel::default();
    let walk = t.cpu_walk_latency_s(CpuPState::MIN, state);
    assert!(walk > 0.0 && walk < 1e-3, "ladder walk {walk}s fits the 1 ms budget");
}

#[test]
fn microbenchmark_trained_model_selects_for_real_kernels() {
    let m = machine();
    let micro = acs::kernels::generate(&acs::kernels::GeneratorConfig::default(), 2014);
    let profiles: Vec<KernelProfile> =
        micro.iter().map(|k| KernelProfile::collect(&m, k)).collect();
    let model = train(&profiles, TrainingParams::default()).unwrap();
    let predictor = Predictor::new(&model);

    // Every real kernel classifies into a valid cluster and gets a valid
    // configuration at any cap.
    for kernel in acs::kernels::all_kernel_instances().iter().take(10) {
        let samples = SamplePair::new(
            m.run_iter(kernel, &sample_config(Device::Cpu), 0),
            m.run_iter(kernel, &sample_config(Device::Gpu), 1),
        );
        let predicted = predictor.predict(&samples);
        assert!(predicted.cluster < model.clusters.len());
        let cfg = predicted.select(20.0);
        let run = m.run_iter(kernel, &cfg, 2);
        assert!(run.time_s > 0.0);
    }
}
