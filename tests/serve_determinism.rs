//! Tier-1 gate: the acceptance criterion for the selection server.
//!
//! `loadgen --requests 1000 --seed 7` against a local server must complete
//! with zero dropped and zero errored requests, and replaying the same
//! seed must produce a **byte-identical** response log — including the
//! second replay, which runs entirely against a warm profile cache. That
//! last part is the determinism-under-concurrency contract of DESIGN.md
//! §11: responses never leak cache state, wall-clock time, or session
//! identity.

use acs::prelude::*;
use acs::serve::{ServeConfig, Server};
use acs_bench::loadgen::{run_loadgen, LoadgenOptions};

#[test]
fn loadgen_seed7_replays_to_byte_identical_logs() {
    // Train on the full suite at the experiment seed, as `acs serve` does.
    let machine = Machine::new(2014);
    let profiles: Vec<KernelProfile> = acs::kernels::all_kernel_instances()
        .iter()
        .map(|k| KernelProfile::collect(&machine, k))
        .collect();
    let model = train(&profiles, TrainingParams::default()).expect("training succeeds");

    let server = Server::bind(ServeConfig::default(), model).expect("ephemeral bind succeeds");
    let addr = server.local_addr().to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server runs"));

    // Mixed traffic: selections, periodic runs, periodic residual reports.
    let opts = LoadgenOptions {
        addr,
        requests: 1000,
        seed: 7,
        sessions: 1,
        run_every: 11,
        report_every: 13,
        feedback: true,
        stats_at_end: false,
        shutdown_at_end: false,
        open_loop: false,
        rate_rps: 0.0,
        deadline_ms: 0,
        priority: 0,
    };

    let (first_report, first_log) = run_loadgen(&opts).expect("first run completes");
    assert_eq!(first_report.errors, 0, "first run errored requests");
    assert_eq!(first_report.dropped, 0, "first run dropped requests");
    assert_eq!(first_log.lines().count(), 1000, "one logged response per request");

    // Replay on the same (now cache-warm) server.
    let (second_report, second_log) = run_loadgen(&opts).expect("replay completes");
    assert_eq!(second_report.errors, 0, "replay errored requests");
    assert_eq!(second_report.dropped, 0, "replay dropped requests");

    assert!(
        first_log == second_log,
        "replay of seed 7 diverged at byte {}",
        first_log
            .bytes()
            .zip(second_log.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or(first_log.len().min(second_log.len()))
    );

    handle.shutdown();
    join.join().expect("server thread joins");
}
