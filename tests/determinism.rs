//! Seed-determinism gates: the same seed must yield *byte-identical*
//! `Timeline` serializations — across repeat runs, across OS threads, and
//! under the guarded chaos path from the fault-injection harness (PR 1).
//!
//! Bit-identical replay is what makes the golden-trace gates in
//! `tests/conformance.rs` possible at all, so it gets its own test file:
//! a failure here explains a failure there.

use acs::prelude::*;
use acs::verify::golden::{
    golden_fault_plan, guarded_chaos_timeline, unguarded_timeline, GOLDEN_CAP_W, GOLDEN_ITERATIONS,
    GOLDEN_SEED,
};
use acs_core::{CappedRuntime, GuardPolicy};
use acs_sim::{FaultPlan, FaultyMachine};

fn trained_model(machine: &Machine) -> TrainedModel {
    let kernels: Vec<KernelCharacteristics> = acs::kernels::comd::kernels(InputSize::Default)
        .into_iter()
        .chain(acs::kernels::smc::kernels(InputSize::Small))
        .collect();
    let profiles: Vec<KernelProfile> =
        kernels.iter().map(|k| KernelProfile::collect(machine, k)).collect();
    train(&profiles, TrainingParams::default()).expect("training succeeds")
}

fn lulesh() -> AppInstance {
    acs::kernels::app_instances().into_iter().find(|a| a.label() == "LULESH Small").unwrap()
}

/// Serialize one full scheduled run on a fresh runtime built from `seed`.
fn unguarded_trace(seed: u64) -> String {
    let machine = Machine::new(seed);
    let model = trained_model(&machine);
    let mut rt = CappedRuntime::new(machine, model, GOLDEN_CAP_W);
    rt.run_app(&lulesh(), GOLDEN_ITERATIONS).expect("run completes");
    rt.timeline().to_json()
}

/// The same, through the guarded chaos path (retries, sensor anomalies,
/// degradation-ladder moves all present in the trace).
fn chaos_trace(seed: u64, plan: &FaultPlan) -> String {
    let machine = Machine::new(seed);
    let model = trained_model(&machine);
    let executor = FaultyMachine::new(machine, plan.clone());
    let mut rt = CappedRuntime::guarded(executor, model, GOLDEN_CAP_W, GuardPolicy::default());
    rt.run_app(&lulesh(), GOLDEN_ITERATIONS).expect("guarded run absorbs faults");
    rt.timeline().to_json()
}

#[test]
fn same_seed_gives_byte_identical_timelines() {
    let a = unguarded_trace(GOLDEN_SEED);
    let b = unguarded_trace(GOLDEN_SEED);
    assert_eq!(a, b, "two same-seed runs must serialize identically");
    assert!(!a.is_empty() && a.starts_with('['), "timeline JSON must be a non-empty array");
}

#[test]
fn different_seeds_give_different_timelines() {
    // The complement: determinism must come from the seed, not from the
    // timeline ignoring the machine entirely.
    assert_ne!(unguarded_trace(GOLDEN_SEED), unguarded_trace(GOLDEN_SEED + 1));
}

#[test]
fn same_seed_is_thread_invariant() {
    // Full replays on independently spawned OS threads must agree with
    // the main thread byte-for-byte. (Pool-size invariance *within* one
    // replay is gated separately in tests/parallel_determinism.rs.)
    let reference = unguarded_trace(GOLDEN_SEED);
    let handles: Vec<_> =
        (0..4).map(|_| std::thread::spawn(|| unguarded_trace(GOLDEN_SEED))).collect();
    for h in handles {
        assert_eq!(h.join().expect("replay thread"), reference);
    }
}

#[test]
fn guarded_chaos_path_is_deterministic_too() {
    let plan = golden_fault_plan();
    let a = chaos_trace(GOLDEN_SEED, &plan);
    let b = chaos_trace(GOLDEN_SEED, &plan);
    assert_eq!(a, b, "chaos injection must be driven by the plan seed alone");

    // The chaos trace must actually exercise the guarded machinery —
    // otherwise this test silently degenerates into the unguarded one.
    assert!(
        a.contains("RetryBackoff") || a.contains("SensorAnomaly") || a.contains("CapViolation"),
        "chaos plan injected nothing observable"
    );

    // A different fault seed must change the trace.
    let other = FaultPlan { seed: plan.seed + 1, ..plan.clone() };
    assert_ne!(chaos_trace(GOLDEN_SEED, &other), a);
}

#[test]
fn golden_producers_agree_with_local_replay() {
    // The golden-trace producers in acs-verify must describe the same
    // byte stream as a replay assembled from public APIs here — pinning
    // the producers against accidental drift in their own setup.
    assert_eq!(unguarded_timeline(), unguarded_trace(GOLDEN_SEED));
    assert_eq!(guarded_chaos_timeline(), chaos_trace(GOLDEN_SEED, &golden_fault_plan()));
}
