//! Thread-count invariance gates for the work-stealing rayon shim.
//!
//! The parallel runtime promises *byte-identical* results at any thread
//! count: chunk boundaries depend only on input length, collection is
//! index-ordered, and floating-point reductions keep the sequential
//! combine order. These tests hold the promise against the three
//! sweep-shaped pipelines the paper's workflow actually runs — offline
//! training, the exhaustive oracle sweep, and the guarded chaos timeline
//! — by replaying each at 1, 2, and 8 pool threads and comparing the
//! serialized output byte-for-byte with the sequential (1-thread) run.
//!
//! `rayon::with_num_threads` scopes a temporary pool to the closure, so
//! one process exercises every thread count regardless of how
//! `RAYON_NUM_THREADS` sized the global pool; CI additionally runs the
//! whole suite under `RAYON_NUM_THREADS=1` and the default sizing.

use acs::core::collect_suite;
use acs::prelude::*;
use acs::verify::golden::{guarded_chaos_timeline, GOLDEN_SEED};
use acs::verify::OracleEngine;

/// Thread counts every pipeline is replayed at. 1 is the sequential
/// fallback (the byte-level reference), 2 forces real helper threads, and
/// 8 over-subscribes a small host so chunk claiming order scrambles.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn training_kernels() -> Vec<KernelCharacteristics> {
    acs::kernels::comd::kernels(InputSize::Default)
        .into_iter()
        .chain(acs::kernels::smc::kernels(InputSize::Small))
        .collect()
}

/// Offline training end-to-end: parallel profile sweeps, the O(K²)
/// pairwise Kendall dissimilarity matrix, clustering, and regression —
/// serialized to JSON.
fn training_json() -> String {
    let machine = Machine::new(GOLDEN_SEED);
    let profiles = collect_suite(&machine, &training_kernels());
    let model = train(&profiles, TrainingParams::default()).expect("training succeeds");
    serde_json::to_string(&model).expect("model serializes")
}

/// The exhaustive oracle sweep: one 42-configuration frontier per kernel,
/// fanned out per kernel across the pool.
fn oracle_sweep_json() -> String {
    let machine = Machine::new(GOLDEN_SEED);
    let frontiers = OracleEngine::new().frontiers(&machine, &training_kernels());
    serde_json::to_string(&frontiers).expect("frontiers serialize")
}

/// Assert `f` produces the same bytes at every pool size in
/// [`THREAD_COUNTS`], returning the sequential reference.
fn assert_thread_invariant(label: &str, f: fn() -> String) -> String {
    let reference = rayon::with_num_threads(1, f);
    assert!(!reference.is_empty(), "{label}: sequential run produced nothing");
    for threads in THREAD_COUNTS {
        let run = rayon::with_num_threads(threads, f);
        assert_eq!(
            run, reference,
            "{label}: {threads}-thread run diverged from the sequential bytes"
        );
    }
    reference
}

#[test]
fn training_is_byte_identical_at_any_thread_count() {
    let json = assert_thread_invariant("offline training", training_json);
    // The serialized model must be substantive, not a degenerate stub.
    assert!(json.contains("clusters"), "model JSON looks truncated: {json:.60}");
}

#[test]
fn oracle_sweep_is_byte_identical_at_any_thread_count() {
    let json = assert_thread_invariant("oracle sweep", oracle_sweep_json);
    assert!(json.starts_with('['), "frontier list must serialize as an array");
}

#[test]
fn guarded_chaos_timeline_is_byte_identical_at_any_thread_count() {
    // The PR 1 fault-injection path on top of the PR 2 golden producers:
    // retries, sensor anomalies, and degradation-ladder moves must all
    // land in the same order whatever the pool size.
    assert_thread_invariant("guarded chaos timeline", guarded_chaos_timeline);
}

#[test]
fn pool_override_nests_and_restores() {
    // The comparison harness itself must be trustworthy: overrides nest,
    // and the global sizing returns once the scope unwinds.
    let outer = rayon::current_num_threads();
    rayon::with_num_threads(2, || {
        assert_eq!(rayon::current_num_threads(), 2);
        rayon::with_num_threads(3, || assert_eq!(rayon::current_num_threads(), 3));
        assert_eq!(rayon::current_num_threads(), 2);
    });
    assert_eq!(rayon::current_num_threads(), outer);
}
