//! End-to-end integration tests: the full offline → online pipeline wired
//! across all five crates, on real suite kernels.

use acs::core::prediction_error;
use acs::prelude::*;

fn machine() -> Machine {
    Machine::new(2014)
}

/// Train on three benchmarks, hold out the fourth.
fn train_without(benchmark: &str) -> (TrainedModel, Vec<KernelProfile>, Vec<KernelProfile>) {
    let m = machine();
    let apps = acs::kernels::app_instances();
    let mut training = Vec::new();
    let mut held_out = Vec::new();
    for app in &apps {
        for k in &app.kernels {
            let p = KernelProfile::collect(&m, k);
            if app.benchmark == benchmark {
                held_out.push(p);
            } else {
                training.push(p);
            }
        }
    }
    let model = train(&training, TrainingParams::default()).expect("training succeeds");
    (model, training, held_out)
}

#[test]
fn full_pipeline_trains_on_real_suite() {
    let (model, training, _) = train_without("LU");
    assert_eq!(model.clusters.len(), 5);
    assert_eq!(model.kernel_ids.len(), training.len());
    assert!(model.silhouette > 0.0, "clusters must have structure");
    // Paper: each cluster contains kernels from several benchmark/input
    // combinations — no cluster is a single benchmark's dumping ground.
    for c in 0..model.clustering.k() {
        assert!(!model.clustering.members(c).is_empty(), "cluster {c} empty");
    }
}

#[test]
fn held_out_predictions_have_bounded_error() {
    // The paper's premise: the model predicts power and performance for
    // kernels it has never seen. Check mean relative errors stay sane on
    // every held-out benchmark.
    for benchmark in ["LULESH", "CoMD", "SMC", "LU"] {
        let (model, _, held_out) = train_without(benchmark);
        let predictor = Predictor::new(&model);
        let mut power_errs = Vec::new();
        let mut perf_errs = Vec::new();
        for p in &held_out {
            let predicted = predictor.predict(&p.sample_pair());
            let err = prediction_error(&predicted, &p.measured_points());
            power_errs.push(err.power_mape);
            perf_errs.push(err.perf_mape);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&power_errs) < 0.30, "{benchmark}: mean power MAPE {:.3}", mean(&power_errs));
        assert!(mean(&perf_errs) < 0.80, "{benchmark}: mean perf MAPE {:.3}", mean(&perf_errs));
    }
}

#[test]
fn two_iterations_suffice_for_selection() {
    // The headline workflow: exactly two kernel executions, then a
    // configuration for any cap.
    let m = machine();
    let (model, _, held_out) = train_without("CoMD");
    let kernel_profile = &held_out[0];
    let kernel = &kernel_profile.kernel;

    let samples = SamplePair::new(
        m.run_iter(kernel, &sample_config(Device::Cpu), 0),
        m.run_iter(kernel, &sample_config(Device::Gpu), 1),
    );
    let predicted = Predictor::new(&model).predict(&samples);

    for cap in [12.0, 18.0, 25.0, 40.0] {
        let config = predicted.select(cap);
        let run = m.run_iter(kernel, &config, 2);
        assert!(run.time_s > 0.0 && run.power_w() > 0.0);
    }
}

#[test]
fn model_beats_naive_baselines_under_tight_caps() {
    // On a GPU-hostile kernel under a tight cap, the model should pick a
    // configuration that both meets the cap and outperforms GPU+FL's
    // (which is stuck on the GPU and blows the cap).
    let (model, _, held_out) = train_without("SMC");
    let fill_boundary =
        held_out.iter().find(|p| p.kernel.name == "FillBoundary").expect("FillBoundary in SMC");
    let predictor = Predictor::new(&model);

    let cap = fill_boundary.oracle_frontier().min_power().unwrap().power_w * 1.3;
    let model_cfg = acs::core::methods::select(Method::Model, fill_boundary, Some(&predictor), cap);
    let gpu_cfg = acs::core::methods::select(Method::GpuFL, fill_boundary, Some(&predictor), cap);

    let model_power = fill_boundary.run_at(&model_cfg).true_power_w();
    let gpu_power = fill_boundary.run_at(&gpu_cfg).true_power_w();
    assert!(
        model_power < gpu_power,
        "model ({model_cfg}, {model_power:.1} W) should undercut GPU+FL \
         ({gpu_cfg}, {gpu_power:.1} W) at cap {cap:.1} W"
    );
    assert_eq!(model_cfg.device, Device::Cpu, "GPU-hostile kernel belongs on the CPU");
}

#[test]
fn profiling_history_integrates_with_online_stage() {
    // Drive everything through the profiling library, as a runtime would.
    let m = machine();
    let (model, _, held_out) = train_without("LU");
    let kernel = &held_out[0].kernel;

    let profiler = acs::profiling::Profiler::new(m.clone());
    profiler.profile(kernel, &sample_config(Device::Cpu), 0);
    profiler.profile(kernel, &sample_config(Device::Gpu), 1);
    assert_eq!(profiler.history().sample_count(&kernel.id()), 2);

    // Rebuild the sample pair from history (what a scheduler would do).
    let cpu = profiler
        .history()
        .latest_at(&kernel.id(), &sample_config(Device::Cpu))
        .expect("cpu sample recorded");
    let gpu = profiler
        .history()
        .latest_at(&kernel.id(), &sample_config(Device::Gpu))
        .expect("gpu sample recorded");
    assert_eq!(cpu.config, sample_config(Device::Cpu));
    assert_eq!(gpu.config, sample_config(Device::Gpu));

    // Predictions from profiler-recorded samples match direct ones
    // (profiler adds no overhead by default).
    let direct = SamplePair::new(
        m.run_iter(kernel, &sample_config(Device::Cpu), 0),
        m.run_iter(kernel, &sample_config(Device::Gpu), 1),
    );
    let predictor = Predictor::new(&model);
    assert_eq!(predictor.classify(&direct), {
        // Rebuild KernelRun-shaped data from the ProfileSamples.
        let rebuilt = SamplePair::new(
            KernelRun {
                config: cpu.config,
                time_s: cpu.time_s,
                power: cpu.power,
                true_power: cpu.power,
                counters: cpu.counters,
            },
            KernelRun {
                config: gpu.config,
                time_s: gpu.time_s,
                power: gpu.power,
                true_power: gpu.power,
                counters: gpu.counters,
            },
        );
        predictor.classify(&rebuilt)
    });
}

#[test]
fn facade_prelude_exposes_whole_workflow() {
    // Compile-time check that the prelude is sufficient for the README
    // workflow (plus a smoke run).
    let m = Machine::new(1);
    let k = KernelCharacteristics::default();
    let cfg = Configuration::cpu(2, CpuPState::MAX);
    let run: KernelRun = m.run(&k, &cfg);
    let _: &Frontier = &Frontier::from_points(vec![PowerPerfPoint {
        config: cfg,
        power_w: run.power_w(),
        perf: 1.0 / run.time_s,
    }]);
    let _ = (InputSize::Small, Method::Model, GpuPState::MIN);
    let _unused: Option<PredictedProfile> = None;
    let _h = History::new();
    let _a: Vec<AppInstance> = acs::kernels::app_instances();
}
