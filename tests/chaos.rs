//! Chaos suite: the guarded runtime under seeded fault injection.
//!
//! Three properties, per the fault-injection harness design:
//!
//! 1. **Never panics** — a guarded [`CappedRuntime`] over a
//!    [`FaultyMachine`] completes `run_app` for *any* seeded
//!    [`FaultPlan`] inside the acceptance envelope (sensor dropout up to
//!    50%, P-state transition failure up to 30%, plus freezes, biases,
//!    counter corruption, and transient run failures).
//! 2. **Bounded over-cap exposure** — with honest (bias-free) sensors,
//!    the degradation ladder never lets a kernel draw well over the cap
//!    for more than a bounded number of consecutive iterations: each
//!    violation or stale-sensor streak forces a rung down within
//!    `K × stale_window` iterations, and the ladder has 13 rungs ending
//!    at a safe-minimum configuration, so ~156 iterations is the
//!    worst-case walk. We assert 200 with margin.
//! 3. **Cap storms are pure re-selection** — rapid `set_cap` oscillation
//!    mid-run re-selects every kernel's configuration from its cached
//!    predicted frontier: no re-profiling (sample count stays at two per
//!    kernel), the timeline's virtual clock stays monotone, and
//!    returning to a previously-used cap reproduces the same choice.

use acs::core::{CappedRuntime, GuardPolicy};
use acs::prelude::*;
use acs::sim::{FaultPlan, FaultyMachine};
use proptest::prelude::*;
use std::sync::OnceLock;

fn machine() -> Machine {
    Machine::new(2014)
}

/// One shared model: train on CoMD + SMC + LU, hold LULESH out so the
/// runtime exercises the full classify-then-select path on unseen
/// kernels.
fn model() -> &'static TrainedModel {
    static MODEL: OnceLock<TrainedModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        let m = machine();
        let training: Vec<KernelProfile> = acs::kernels::app_instances()
            .iter()
            .filter(|a| a.benchmark != "LULESH")
            .flat_map(|a| a.kernels.iter())
            .map(|k| KernelProfile::collect(&m, k))
            .collect();
        train(&training, TrainingParams::default()).unwrap()
    })
}

fn app(label: &str) -> AppInstance {
    acs::kernels::app_instances().into_iter().find(|a| a.label() == label).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property 1: any fault plan in the acceptance envelope, including
    /// lying sensors and corrupted counters, and the guarded runtime
    /// still completes the app — transient failures are absorbed into
    /// `failed_runs`, never surfaced as panics or errors.
    #[test]
    fn guarded_runtime_survives_any_fault_plan(
        fault_seed in 0u64..1_000_000,
        dropout in 0.0..0.5f64,
        freeze in 0.0..0.3f64,
        bias in 0.0..0.3f64,
        bias_frac in -0.5..0.5f64,
        corrupt in 0.0..0.3f64,
        pstate_fail in 0.0..0.3f64,
        run_fail in 0.0..0.25f64,
        cap_w in 10.0..40.0f64,
    ) {
        let plan = FaultPlan {
            seed: fault_seed,
            sensor_dropout_p: dropout,
            sensor_freeze_p: freeze,
            sensor_bias_p: bias,
            sensor_bias_frac: bias_frac,
            counter_corrupt_p: corrupt,
            pstate_fail_p: pstate_fail,
            run_fail_p: run_fail,
            ..FaultPlan::default()
        };
        let exec = FaultyMachine::new(machine(), plan);
        let mut rt =
            CappedRuntime::guarded(exec, model().clone(), cap_w, GuardPolicy::default());
        let app = app("CoMD");
        let report = rt.run_app(&app, 6).unwrap();
        let expected = app.kernels.len() as u64 * 6;
        prop_assert!(report.failed_runs <= expected);
        prop_assert!(report.total_time_s.is_finite() && report.total_time_s >= 0.0);
        prop_assert!((0.0..=1.0).contains(&report.cap_compliance));
        // Health is tracked for every kernel the app touched.
        for k in &app.kernels {
            prop_assert!(rt.health(&k.id()).is_some());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property 2: with honest sensors (no bias), consecutive iterations
    /// whose *true* power is well over the cap are bounded — the ladder
    /// forces the kernel down to the safe minimum long before 200.
    #[test]
    fn over_cap_streaks_are_bounded(
        fault_seed in 0u64..1_000_000,
        dropout in 0.0..0.5f64,
        freeze in 0.0..0.3f64,
        pstate_fail in 0.0..0.3f64,
        run_fail in 0.0..0.2f64,
        cap_w in 12.0..20.0f64,
    ) {
        let plan = FaultPlan {
            seed: fault_seed,
            sensor_dropout_p: dropout,
            sensor_freeze_p: freeze,
            pstate_fail_p: pstate_fail,
            run_fail_p: run_fail,
            ..FaultPlan::default()
        };
        let exec = FaultyMachine::new(machine(), plan);
        let mut rt =
            CappedRuntime::guarded(exec, model().clone(), cap_w, GuardPolicy::default());
        // A compute-dense kernel that wants far more than a tight cap.
        let kernel = app("LULESH Small")
            .kernels
            .iter()
            .find(|k| k.name == "CalcKinematics")
            .cloned()
            .unwrap_or_else(|| app("LULESH Small").kernels[0].clone());

        let mut streak = 0u32;
        let mut worst = 0u32;
        for _ in 0..400 {
            match rt.run_kernel(&kernel) {
                Ok(run) => {
                    if run.true_power_w() > cap_w * 1.15 {
                        streak += 1;
                        worst = worst.max(streak);
                    } else {
                        streak = 0;
                    }
                }
                // A failed iteration draws no power; it neither extends
                // nor clears an over-cap streak.
                Err(acs::core::RuntimeError::ExecutionFailed { .. }) => {}
                Err(other) => return Err(TestCaseError::Fail(other.to_string())),
            }
        }
        prop_assert!(
            worst <= 200,
            "over-cap streak {} exceeds the ladder bound (cap {:.1} W)",
            worst,
            cap_w
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property 3 (satellite): rapid cap oscillation mid-run always
    /// re-selects from the cached frontier — the planned configuration
    /// is honored by the next run, samples are never re-taken, the
    /// virtual clock is monotone, and the selection is a pure function
    /// of the cap.
    #[test]
    fn cap_storm_reselects_from_cached_frontier(
        machine_seed in 0u64..1_000_000,
        caps in prop::collection::vec(10.0..40.0f64, 10..25),
    ) {
        let mut rt = CappedRuntime::new(Machine::new(machine_seed), model().clone(), 25.0);
        let app = app("CoMD");

        // Warm up: both sample iterations plus one configured iteration
        // per kernel, so every kernel has a cached frontier.
        for _ in 0..3 {
            for k in &app.kernels {
                rt.run_kernel(k).unwrap();
            }
        }
        let baseline: Vec<Configuration> =
            app.kernels.iter().map(|k| rt.planned_config(&k.id()).unwrap()).collect();

        for &cap in &caps {
            rt.set_cap(cap);
            for k in &app.kernels {
                let planned = rt.planned_config(&k.id()).unwrap();
                let run = rt.run_kernel(k).unwrap();
                prop_assert_eq!(run.config, planned, "run must honor the re-selected config");
            }
        }

        // Returning to the original cap reproduces the original choices:
        // selection is cache + cap, nothing else.
        rt.set_cap(25.0);
        for (k, before) in app.kernels.iter().zip(&baseline) {
            prop_assert_eq!(rt.planned_config(&k.id()).unwrap(), *before);
        }

        let entries = rt.timeline().entries();
        for pair in entries.windows(2) {
            prop_assert!(
                pair[1].at_s >= pair[0].at_s,
                "virtual clock went backwards: {} then {}",
                pair[0].at_s,
                pair[1].at_s
            );
        }
        let cap_events = entries
            .iter()
            .filter(|e| matches!(e.event, acs::profiling::Event::CapChanged { .. }))
            .count();
        prop_assert_eq!(cap_events, caps.len() + 1, "one CapChanged per set_cap");
        let sample_runs = entries
            .iter()
            .filter(|e| {
                matches!(e.event, acs::profiling::Event::KernelRun { iteration, .. } if iteration < 2)
            })
            .count();
        prop_assert_eq!(
            sample_runs,
            app.kernels.len() * 2,
            "cap changes must never trigger re-profiling"
        );
    }
}
