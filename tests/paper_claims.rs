//! Reproduction-target tests: the qualitative claims of the paper's
//! evaluation (DESIGN.md section 5), asserted on the full 65-combination
//! suite under leave-one-benchmark-out cross-validation.
//!
//! These are *shape* assertions — orderings and coarse bands, not the
//! paper's absolute numbers (our substrate is a simulator, not the
//! authors' Trinity testbed).

use acs::core::eval::{characterize_apps, evaluate, Evaluation};
use acs::prelude::*;

fn full_evaluation() -> Evaluation {
    let machine = Machine::new(2014);
    let apps = characterize_apps(&machine, &acs::kernels::app_instances());
    evaluate(&apps, TrainingParams::default()).expect("full-suite training succeeds")
}

fn pct_under(e: &Evaluation, m: Method) -> f64 {
    e.table3().iter().find(|s| s.method == m).unwrap().pct_under
}

fn under_perf(e: &Evaluation, m: Method) -> f64 {
    e.table3().iter().find(|s| s.method == m).unwrap().under_perf_pct.unwrap_or(0.0)
}

fn over_power(e: &Evaluation, m: Method) -> f64 {
    e.table3().iter().find(|s| s.method == m).unwrap().over_power_pct.unwrap_or(100.0)
}

#[test]
fn table3_shape_reproduces() {
    let e = full_evaluation();

    // Claim 1: Model+FL meets power constraints most often (paper: 88%),
    // GPU+FL least often (paper: 60%).
    let methods = Method::COMPARED;
    let best_under = methods
        .iter()
        .copied()
        .max_by(|a, b| pct_under(&e, *a).partial_cmp(&pct_under(&e, *b)).unwrap());
    let worst_under = methods
        .iter()
        .copied()
        .min_by(|a, b| pct_under(&e, *a).partial_cmp(&pct_under(&e, *b)).unwrap());
    assert_eq!(best_under, Some(Method::ModelFL), "Model+FL must meet caps most often");
    assert_eq!(worst_under, Some(Method::GpuFL), "GPU+FL must meet caps least often");

    // Claim 2: Model+FL meets caps in the high-80s-or-better band and the
    // model methods keep ~90% of oracle performance doing so (paper: 88%
    // under, 91% perf).
    assert!(pct_under(&e, Method::ModelFL) >= 80.0);
    assert!(under_perf(&e, Method::Model) >= 80.0, "{}", under_perf(&e, Method::Model));
    assert!(under_perf(&e, Method::ModelFL) >= 80.0);

    // Claim 3: CPU+FL is clearly the worst under-limit performer
    // (paper: 69% vs 91/91/94).
    for m in [Method::Model, Method::ModelFL, Method::GpuFL] {
        assert!(
            under_perf(&e, Method::CpuFL) < under_perf(&e, m) - 10.0,
            "CPU+FL ({:.0}%) must clearly trail {m} ({:.0}%)",
            under_perf(&e, Method::CpuFL),
            under_perf(&e, m)
        );
    }

    // Claim 4: in over-limit cases GPU+FL overshoots power the most
    // (paper: 137%) and Model+FL the least (paper: 106%).
    for m in [Method::Model, Method::ModelFL, Method::CpuFL] {
        assert!(
            over_power(&e, Method::GpuFL) > over_power(&e, m),
            "GPU+FL must overshoot the most"
        );
    }
    assert!(
        over_power(&e, Method::ModelFL) <= over_power(&e, Method::CpuFL),
        "Model+FL must overshoot less than CPU+FL"
    );
}

#[test]
fn fig6_under_limit_percentages_per_method() {
    // Figure 6: percentage of cases each method stays under the power
    // limit, per benchmark. Asserted from the differential regret report
    // (crates/verify) over the default 264-scenario oracle grid rather
    // than the Table III evaluation, so the claim is checked against
    // exhaustive ground truth.
    //
    // Tolerances: the paper's absolute numbers (Model+FL 88%, Model 73%,
    // GPU+FL 60% aggregate; Model+FL ≥ 57.1% per benchmark, Fig. 6) came
    // from the Trinity testbed. Our simulator is cleaner than real
    // hardware, so methods land *above* the paper's floors; each
    // assertion keeps the paper number visible as `paper:` and allows
    // simulator optimism upward while gating collapse downward.
    use acs::verify::{run_differential, GridParams, ScenarioGrid};

    let grid = ScenarioGrid::generate(GridParams::default());
    let report = run_differential(&grid, TrainingParams::default()).expect("training succeeds");
    let under = |m: Method| report.for_method(m).unwrap().under_rate * 100.0;

    // Aggregate bands: paper value − tolerance ≤ ours ≤ 100.
    for (method, paper_pct, tolerance) in [
        (Method::ModelFL, 88.0, 8.0), // paper: 88% — the headline claim
        (Method::Model, 73.0, 8.0),   // paper: 73%
        (Method::CpuFL, 88.0, 20.0),  // paper: 88% (fixed CPU rarely overshoots)
        (Method::GpuFL, 60.0, 10.0),  // paper: 60% — the floor of Fig. 6
    ] {
        let ours = under(method);
        assert!(
            ours >= paper_pct - tolerance,
            "{method}: {ours:.1}% under-limit vs paper {paper_pct:.0}% (tolerance −{tolerance:.0})"
        );
        assert!(ours <= 100.0 + 1e-9, "{method}: {ours:.1}% is not a percentage");
    }

    // Ordering claims (robust to simulator offsets): the model methods
    // beat both fixed-device baselines, and Model+FL never trails Model.
    assert!(under(Method::ModelFL) >= under(Method::Model), "FL correction must not hurt");
    for fixed in [Method::CpuFL, Method::GpuFL] {
        assert!(
            under(Method::ModelFL) > under(fixed),
            "Model+FL ({:.1}%) must beat {fixed} ({:.1}%)",
            under(Method::ModelFL),
            under(fixed)
        );
    }

    // Per-benchmark floors (Fig. 6's weakest column is LU Small at
    // 57.1%): Model+FL must stay above that floor on every evaluated
    // benchmark prefix, and GPU+FL must be the weak method on LU — the
    // benchmark whose CPU-friendly kernels punish a fixed-GPU policy.
    for prefix in ["LULESH/", "LU/"] {
        let mfl = report
            .under_pct_for(Method::ModelFL, prefix)
            .expect("evaluated scenarios include the prefix");
        assert!(mfl >= 57.1 - 5.0, "Model+FL on {prefix}: {mfl:.1}% vs paper floor 57.1%");
    }
    let lu_gpu = report.under_pct_for(Method::GpuFL, "LU/").unwrap();
    let lu_mfl = report.under_pct_for(Method::ModelFL, "LU/").unwrap();
    assert!(
        lu_gpu < lu_mfl,
        "GPU+FL on LU ({lu_gpu:.1}%) must trail Model+FL ({lu_mfl:.1}%), per Fig. 6"
    );
}

#[test]
fn lu_small_cliff_reproduces() {
    // Figure 7: a sharp performance cliff at the CPU→GPU device switch.
    let machine = Machine::new(2014);
    let apps = acs::kernels::app_instances();
    let lu = &apps.iter().find(|a| a.label() == "LU Small").unwrap().kernels[0];
    let frontier = KernelProfile::collect(&machine, lu).frontier().normalized();

    let pts = frontier.points();
    let (mut jump, mut at) = (0.0, 0);
    for (i, w) in pts.windows(2).enumerate() {
        if w[1].perf - w[0].perf > jump {
            jump = w[1].perf - w[0].perf;
            at = i + 1;
        }
    }
    assert!(jump > 0.3, "LU Small cliff must exceed 30 points (paper: 78.6), got {jump}");
    assert_eq!(pts[at - 1].config.device, Device::Cpu);
    assert_eq!(pts[at].config.device, Device::Gpu);
}

#[test]
fn frontier_device_split_matches_figure2() {
    // Figure 2: "using the GPU results in better performance for higher
    // power limits, while the CPU is able to reach lower power limits" —
    // check for the GPU-friendly LULESH flagship kernel.
    let machine = Machine::new(2014);
    let apps = acs::kernels::app_instances();
    let k = apps
        .iter()
        .find(|a| a.label() == "LULESH Small")
        .unwrap()
        .kernels
        .iter()
        .find(|k| k.name == "CalcFBHourglassForce")
        .unwrap()
        .clone();
    let frontier = KernelProfile::collect(&machine, &k).frontier();
    let pts = frontier.points();

    assert_eq!(pts.first().unwrap().config.device, Device::Cpu, "lowest power is CPU");
    assert_eq!(pts.last().unwrap().config.device, Device::Gpu, "highest perf is GPU");
    // Single crossover: once the frontier switches to GPU it stays GPU.
    let first_gpu = pts.iter().position(|p| p.config.device == Device::Gpu).unwrap();
    assert!(pts[first_gpu..].iter().all(|p| p.config.device == Device::Gpu));
    assert!(pts[..first_gpu].iter().all(|p| p.config.device == Device::Cpu));
}

#[test]
fn best_config_power_spread_matches_paper_band() {
    // Section III-B: "even after selecting the best-performing
    // configuration for each kernel, one kernel uses 19 watts, while
    // another uses 55" — require a wide spread (ours: roughly 2x across
    // the suite).
    let machine = Machine::new(2014);
    let mut best_powers: Vec<f64> = acs::kernels::all_kernel_instances()
        .iter()
        .map(|k| {
            let p = KernelProfile::collect(&machine, k);
            p.best_run().true_power_w()
        })
        .collect();
    best_powers.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = best_powers.first().unwrap();
    let max = best_powers.last().unwrap();
    assert!(max / min > 1.5, "best-config power spread too narrow: {min:.1}–{max:.1} W");
    assert!(*min > 8.0 && *max < 70.0, "spread {min:.1}–{max:.1} W outside plausible envelope");
}

#[test]
fn perf_range_varies_by_orders_of_magnitude() {
    // Section III-B: one kernel's best/worst performance ratio is huge
    // (paper: 367x) while another's is small (1.62x).
    let machine = Machine::new(2014);
    let mut ratios: Vec<f64> = acs::kernels::all_kernel_instances()
        .iter()
        .map(|k| {
            let p = KernelProfile::collect(&machine, k);
            let best = p.best_run().time_s;
            let worst = p.runs.iter().map(|r| r.time_s).fold(0.0f64, f64::max);
            worst / best
        })
        .collect();
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // Paper's extreme kernel spans 367x; our simulated LU spans ~38x —
    // same order-of-magnitude story (documented in EXPERIMENTS.md).
    assert!(*ratios.last().unwrap() > 25.0, "max perf range {:.1}", ratios.last().unwrap());
    assert!(*ratios.first().unwrap() < 10.0, "min perf range {:.1}", ratios.first().unwrap());
}

#[test]
fn online_overhead_is_sub_millisecond() {
    // Section II / IV-C: "less than one millisecond to make each
    // configuration selection".
    let machine = Machine::new(2014);
    let apps = characterize_apps(&machine, &acs::kernels::app_instances());
    let training: Vec<KernelProfile> =
        apps.iter().skip(1).flat_map(|a| a.profiles.iter().cloned()).collect();
    let model = acs::core::train(&training, TrainingParams::default()).unwrap();
    let predictor = Predictor::new(&model);
    let samples = apps[0].profiles[0].sample_pair();

    let start = std::time::Instant::now();
    let n = 200;
    for i in 0..n {
        let p = predictor.predict(&samples);
        std::hint::black_box(p.select(10.0 + i as f64 / 10.0));
    }
    let per = start.elapsed().as_secs_f64() / f64::from(n);
    assert!(per < 1e-3, "online selection took {:.3} ms", per * 1e3);
}
