//! Bit-for-bit identity gate for the flattened selection engine
//! (DESIGN.md §15).
//!
//! The fast path — SoA config space, branchless CART, fused regression
//! into a caller-owned scratch arena, precomputed frontier skeletons —
//! promises *exactly* the scalar pipeline's floats, not merely close
//! ones: every intermediate keeps the scalar IEEE operation order, so
//! `f64::to_bits` must agree on every predicted point, the frontier, and
//! the selected configuration. This suite holds that promise across
//! random machine seeds × all four machine families × every kernel in a
//! cross-application suite × a spread of power caps (including NaN and
//! infeasible caps), and replays the comparison at 1, 2, and 8 rayon
//! pool threads to pin that the flat path has no hidden dependence on
//! pool sizing.

use std::sync::OnceLock;

use acs::core::{collect_suite, SelectScratch};
use acs::prelude::*;
use acs::sim::FamilyId;
use proptest::prelude::*;

/// 1 = sequential reference, 2 = real helper threads, 8 = over-
/// subscribed (same ladder as `parallel_determinism.rs`).
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Seed for the per-family training machines; sampling machines use
/// proptest-drawn seeds instead.
const TRAIN_SEED: u64 = 2014;

/// Kernels the identity sweep probes: one app per suite family so the
/// classifier visits CPU-bound, GPU-bound, and mixed clusters.
fn probe_kernels() -> Vec<KernelCharacteristics> {
    acs::kernels::comd::kernels(InputSize::Default)
        .into_iter()
        .chain(acs::kernels::smc::kernels(InputSize::Small))
        .chain(acs::kernels::lulesh::kernels(InputSize::Small))
        .chain(acs::kernels::lu::kernels(InputSize::Small))
        .collect()
}

/// One trained model per machine family, built once and shared by every
/// proptest case (training is the expensive part; the identity property
/// itself is cheap).
fn family_models() -> &'static Vec<(FamilyId, TrainedModel)> {
    static MODELS: OnceLock<Vec<(FamilyId, TrainedModel)>> = OnceLock::new();
    MODELS.get_or_init(|| {
        FamilyId::ALL
            .into_iter()
            .map(|family| {
                let machine = Machine::from_family(family, TRAIN_SEED);
                let profiles = collect_suite(&machine, &probe_kernels());
                let model =
                    train(&profiles, TrainingParams::default()).expect("family training succeeds");
                (family, model)
            })
            .collect()
    })
}

/// Assert the flat profile is bit-identical to the scalar one.
fn assert_profiles_identical(fast: &PredictedProfile, scalar: &PredictedProfile, ctx: &str) {
    assert_eq!(fast.cluster, scalar.cluster, "{ctx}: cluster diverged");
    assert_eq!(fast.points.len(), scalar.points.len(), "{ctx}: point count diverged");
    for (f, s) in fast.points.iter().zip(&scalar.points) {
        assert_eq!(f.config, s.config, "{ctx}: point order diverged");
        assert_eq!(
            f.power_w.to_bits(),
            s.power_w.to_bits(),
            "{ctx}: power bits diverged at {}",
            f.config
        );
        assert_eq!(f.perf.to_bits(), s.perf.to_bits(), "{ctx}: perf bits diverged at {}", f.config);
    }
    assert_eq!(
        fast.frontier.points().len(),
        scalar.frontier.points().len(),
        "{ctx}: frontier size diverged"
    );
    for (f, s) in fast.frontier.points().iter().zip(scalar.frontier.points()) {
        assert_eq!(f.config, s.config, "{ctx}: frontier order diverged");
        assert_eq!(f.power_w.to_bits(), s.power_w.to_bits(), "{ctx}: frontier power diverged");
        assert_eq!(f.perf.to_bits(), s.perf.to_bits(), "{ctx}: frontier perf diverged");
    }
}

/// The full identity sweep for one machine seed and cap list: every
/// family × every probe kernel, flat vs scalar.
fn sweep(seed: u64, caps: &[f64]) {
    let kernels = probe_kernels();
    let mut scratch = SelectScratch::new();
    for (family, model) in family_models() {
        let machine = Machine::from_family(*family, seed);
        let predictor = Predictor::new(model);
        for kernel in &kernels {
            let samples = SamplePair::new(
                machine.run(kernel, &sample_config(Device::Cpu)),
                machine.run(kernel, &sample_config(Device::Gpu)),
            );
            let ctx = format!("family {family:?} seed {seed} kernel {}", kernel.id());
            let scalar = predictor.predict_scalar(&samples);
            assert_profiles_identical(&predictor.predict(&samples), &scalar, &ctx);
            for &cap in caps {
                let fast = predictor.select_with(&samples, cap, &mut scratch);
                assert_eq!(fast, scalar.select(cap), "{ctx}: selection diverged under cap {cap}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases_env(8))]

    #[test]
    fn flat_path_is_bit_identical_to_scalar_at_any_thread_count(
        seed in 0u64..1_000_000,
        caps in prop::collection::vec((0usize..4, 0.0..80.0f64), 2..6).prop_map(|raw| {
            raw.into_iter()
                .map(|(kind, cap)| match kind {
                    0 => f64::NAN,
                    1 => f64::INFINITY,
                    2 => -1.0,
                    _ => cap,
                })
                .collect::<Vec<f64>>()
        }),
    ) {
        for threads in THREAD_COUNTS {
            rayon::with_num_threads(threads, || sweep(seed, &caps));
        }
    }
}

#[test]
fn every_family_model_classifies_through_the_flat_tree() {
    // The identity sweep would still pass if every family model silently
    // fell back to the pointer walk; pin that the flattened CART is
    // actually in play for the trained models under test.
    for (family, model) in family_models() {
        let predictor = Predictor::new(model);
        assert!(
            predictor.fast().uses_flat_tree(),
            "family {family:?}: trained CART did not flatten (depth above FlatTree::MAX_DEPTH?)"
        );
    }
}
