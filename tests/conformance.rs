//! The conformance gate: every selection method differentially tested
//! against the exhaustive oracle, the metamorphic invariants checked, and
//! the current behavior diffed against the blessed golden traces.
//!
//! This is the `cargo test` face of `crates/verify` (DESIGN.md §9). When
//! a behavior change is *intentional*, re-bless with `acs verify --bless`
//! and commit the updated files under `tests/golden/`; when it is not,
//! the diff written to `target/golden-diffs/` (uploaded as a CI artifact)
//! shows exactly where the timeline diverged.

use acs::prelude::*;
use acs::verify::{golden, metamorphic, run_differential, GridParams, ScenarioGrid, Thresholds};

/// The full grid is deliberately shared across tests (generation sweeps
/// 3 machines × every training/evaluation kernel × 42 configurations).
fn full_grid() -> ScenarioGrid {
    ScenarioGrid::generate(GridParams::default())
}

#[test]
fn differential_covers_all_methods_across_200_plus_scenarios() {
    let grid = full_grid();
    assert!(grid.len() >= 200, "grid too small: {} scenarios", grid.len());

    let report = run_differential(&grid, TrainingParams::default()).expect("training succeeds");
    assert_eq!(report.total_scenarios, grid.len());
    for m in Method::COMPARED {
        let r = report.for_method(m).expect("method present");
        assert_eq!(r.scenarios, grid.len(), "{m} must cover every scenario");
    }

    // The paper-derived pass/fail gates (Thresholds docs give the
    // provenance of each number).
    let failures = report.check(&Thresholds::default());
    assert!(failures.is_empty(), "regret gates failed:\n  {}", failures.join("\n  "));

    // No method may beat the oracle while meeting a feasible cap — if one
    // does, the oracle sweep itself is broken. The guard uses the same
    // strict comparison as `Frontier::best_under` (`power_w <= cap_w`, no
    // epsilon): `under_limit()` tolerates float noise just above the cap,
    // and a pick in that sliver may honestly out-perform the oracle's
    // strictly-capped choice.
    for c in &report.cases {
        if c.oracle.feasible && c.power_w <= c.cap_w {
            assert!(
                c.perf <= c.oracle.perf * (1.0 + 1e-9),
                "{} beat the oracle on {} at {:.1} W",
                c.method,
                c.kernel_id,
                c.cap_w
            );
        }
    }
}

#[test]
fn metamorphic_invariants_hold_on_every_grid_machine() {
    let grid = full_grid();
    let app = acs::kernels::app_instances()
        .into_iter()
        .find(|a| a.label() == "LULESH Small")
        .expect("LULESH Small exists");

    let mut violations = Vec::new();
    for m in &grid.machines {
        let model =
            acs::core::train(&m.training, TrainingParams::default()).expect("training succeeds");
        let evaluated: Vec<KernelProfile> = m.evaluated.iter().map(|(p, _)| p.clone()).collect();
        for v in metamorphic::check_all(m.machine.seed, &m.training, &evaluated, &model, &app) {
            violations.push(format!("machine {}: {v}", m.machine.seed));
        }
    }
    assert!(violations.is_empty(), "metamorphic violations:\n  {}", violations.join("\n  "));
}

#[test]
fn golden_traces_match_blessed_files() {
    let dir = golden::default_golden_dir();
    let diffs = acs::verify::compare(&dir);
    if diffs.iter().any(|d| !d.passed()) {
        // Leave the actual outputs where CI picks them up as artifacts.
        let artifact_dir = golden::default_artifact_dir();
        let written = acs::verify::write_failure_artifacts(&artifact_dir, &diffs)
            .expect("artifact dir is writable");
        let rendered: Vec<String> = diffs.iter().map(acs::verify::render_diff).collect();
        panic!(
            "golden traces diverged (artifacts: {}):\n{}",
            written.iter().map(|p| p.display().to_string()).collect::<Vec<_>>().join(", "),
            rendered.join("\n")
        );
    }
}
