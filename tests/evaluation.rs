//! Integration tests for the evaluation protocol itself: invariants that
//! must hold for *any* correct implementation of Section V, checked on a
//! reduced suite for speed.

use acs::core::eval::{characterize_apps, evaluate, AppProfiles, Evaluation};
use acs::core::methods;
use acs::prelude::*;

fn reduced_suite() -> Vec<AppProfiles> {
    let machine = Machine::new(7);
    let apps: Vec<AppInstance> = acs::kernels::app_instances()
        .into_iter()
        .filter(|a| a.input != "Large") // halve the work
        .collect();
    characterize_apps(&machine, &apps)
}

fn run_eval() -> Evaluation {
    evaluate(&reduced_suite(), TrainingParams::default()).expect("training succeeds")
}

#[test]
fn every_kernel_contributes_every_method() {
    let e = run_eval();
    let apps = reduced_suite();
    let kernel_count: usize = apps.iter().map(|a| a.profiles.len()).sum();
    for &m in &Method::COMPARED {
        let mut ids: Vec<&str> =
            e.cases.iter().filter(|c| c.method == m).map(|c| c.kernel_id.as_str()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), kernel_count, "{m} missing kernels");
    }
}

#[test]
fn caps_are_oracle_frontier_powers() {
    // Section V-B: the tested power constraints are exactly the power
    // levels of the oracle frontier configurations.
    let apps = reduced_suite();
    let e = evaluate(&apps, TrainingParams::default()).unwrap();
    for app in &apps {
        for profile in &app.profiles {
            let expected: Vec<f64> =
                profile.oracle_frontier().points().iter().map(|p| p.power_w).collect();
            let mut seen: Vec<f64> = e
                .cases
                .iter()
                .filter(|c| c.kernel_id == profile.kernel.id() && c.method == Method::Model)
                .map(|c| c.cap_w)
                .collect();
            seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut want = expected.clone();
            want.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(seen, want, "caps mismatch for {}", profile.kernel.id());
        }
    }
}

#[test]
fn oracle_meets_every_cap_it_defines() {
    // By construction the oracle frontier point at each cap meets it.
    let apps = reduced_suite();
    for app in &apps {
        for profile in &app.profiles {
            for p in profile.oracle_frontier().points() {
                let cfg = methods::oracle_select(profile, p.power_w);
                assert!(
                    profile.run_at(&cfg).true_power_w() <= p.power_w * (1.0 + 1e-9),
                    "oracle violated its own cap on {}",
                    profile.kernel.id()
                );
            }
        }
    }
}

#[test]
fn oracle_perf_bounds_under_limit_methods() {
    let e = run_eval();
    for c in &e.cases {
        if c.under_limit() {
            assert!(c.perf_ratio() <= 1.0 + 1e-9, "{:?}", c);
        } else {
            // Over-limit cases must exceed the cap in true power.
            assert!(c.power_w > c.cap_w);
        }
    }
}

#[test]
fn frequency_limiting_never_hurts_cap_compliance() {
    let e = run_eval();
    let pct = |m: Method| e.table3().iter().find(|s| s.method == m).unwrap().pct_under;
    assert!(pct(Method::ModelFL) >= pct(Method::Model) - 1e-9);
}

#[test]
fn summaries_decompose_by_app() {
    // Per-app weights sum to 1 per method; the all-up weight equals the
    // number of app instances.
    let e = run_eval();
    let labels = e.app_labels();
    for &m in &Method::COMPARED {
        let mut total = 0.0;
        for label in &labels {
            total += e
                .cases
                .iter()
                .filter(|c| c.method == m && &c.app_label == label)
                .map(|c| c.weight)
                .sum::<f64>();
        }
        assert!((total - labels.len() as f64).abs() < 1e-9);
    }
}

#[test]
fn evaluation_is_reproducible_across_runs() {
    let a = run_eval();
    let b = run_eval();
    assert_eq!(a, b);
}

#[test]
fn gpu_fl_never_selects_cpu_device_and_vice_versa() {
    let e = run_eval();
    for c in &e.cases {
        match c.method {
            Method::GpuFL => assert_eq!(c.config.device, Device::Gpu),
            Method::CpuFL => {
                assert_eq!(c.config.device, Device::Cpu);
                assert_eq!(c.config.threads, 4);
            }
            _ => {}
        }
    }
}

#[test]
fn different_seeds_preserve_table3_shape() {
    // The qualitative result must not be an artifact of one noise seed.
    for seed in [1, 99] {
        let machine = Machine::new(seed);
        let apps: Vec<AppInstance> =
            acs::kernels::app_instances().into_iter().filter(|a| a.input != "Large").collect();
        let apps = characterize_apps(&machine, &apps);
        let e = evaluate(&apps, TrainingParams::default()).unwrap();
        let get = |m: Method| e.table3().iter().find(|s| s.method == m).copied().unwrap();
        assert!(
            get(Method::ModelFL).pct_under >= get(Method::GpuFL).pct_under,
            "seed {seed}: Model+FL must beat GPU+FL on cap compliance"
        );
        let cpu_perf = get(Method::CpuFL).under_perf_pct.unwrap_or(0.0);
        let model_perf = get(Method::ModelFL).under_perf_pct.unwrap_or(0.0);
        assert!(
            model_perf > cpu_perf,
            "seed {seed}: Model+FL perf {model_perf} must beat CPU+FL {cpu_perf}"
        );
    }
}
